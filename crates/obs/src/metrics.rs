//! The metrics registry: counters, gauges, and log-linear histograms.
//!
//! Unlike the tracer (which records a timeline and is drained per run),
//! metrics are cheap cumulative aggregates: every instrument is a handful
//! of atomics, safe to bump from any rank thread without locking.  The
//! registry is name-keyed and get-or-create — instrumentation sites hold
//! an `Arc` to their instrument and never touch the registry lock on the
//! hot path.
//!
//! Histograms are **log-linear**: buckets are grouped in power-of-two
//! octaves, each octave split into [`Histogram::SUB`] linear sub-buckets.
//! Relative error of a reported quantile is bounded by `1/SUB` (25%),
//! which is plenty for latency distributions spanning ns..s.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    n: AtomicU64,
}

impl Counter {
    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.n.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.n.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge holding an `f64` (stored as bits).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value (0.0 if never set).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Lock-free log-linear histogram of `u64` samples (e.g. nanoseconds).
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// Linear sub-buckets per power-of-two octave.
    pub const SUB: usize = 4;
    /// Number of octaves covered (values ≥ 2^63 clamp into the last).
    pub const OCTAVES: usize = 64;

    fn new() -> Self {
        let n = Self::SUB * Self::OCTAVES;
        Histogram {
            buckets: (0..n).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Bucket index for a sample.
    #[inline]
    fn index(v: u64) -> usize {
        if v < Self::SUB as u64 {
            return v as usize; // exact buckets for tiny values
        }
        let octave = 63 - v.leading_zeros() as usize;
        // position of the SUB linear sub-buckets within the octave
        let sub = ((v >> (octave.saturating_sub(2))) & (Self::SUB as u64 - 1)) as usize;
        let idx = octave * Self::SUB + sub;
        idx.min(Self::SUB * Self::OCTAVES - 1)
    }

    /// Lower bound of bucket `idx` (inverse of [`Self::index`]).
    fn bucket_floor(idx: usize) -> u64 {
        if idx < Self::SUB {
            return idx as u64;
        }
        let octave = idx / Self::SUB;
        let sub = (idx % Self::SUB) as u64;
        let base = 1u64 << octave;
        base + (sub << octave.saturating_sub(2))
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[Self::index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded sample (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean sample, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        let c = self.count();
        if c == 0 {
            0.0
        } else {
            self.sum() as f64 / c as f64
        }
    }

    /// Approximate quantile `q` in `[0, 1]` (lower bound of the bucket
    /// containing the q-th sample); 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return Self::bucket_floor(i);
            }
        }
        self.max()
    }
}

/// The global, name-keyed instrument registry.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// The process-wide registry.
    pub fn global() -> &'static Registry {
        static REG: OnceLock<Registry> = OnceLock::new();
        REG.get_or_init(Registry::default)
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut m = self.counters.lock().unwrap_or_else(|p| p.into_inner());
        m.entry(name.to_string()).or_default().clone()
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut m = self.gauges.lock().unwrap_or_else(|p| p.into_inner());
        m.entry(name.to_string()).or_default().clone()
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut m = self.histograms.lock().unwrap_or_else(|p| p.into_inner());
        m.entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new()))
            .clone()
    }

    /// Snapshot every instrument's current value, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .map(|(k, v)| {
                (
                    k.clone(),
                    HistogramSummary {
                        count: v.count(),
                        sum: v.sum(),
                        mean: v.mean(),
                        p50: v.quantile(0.50),
                        p95: v.quantile(0.95),
                        p99: v.quantile(0.99),
                        max: v.max(),
                    },
                )
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Remove every instrument (tests; sites holding `Arc`s keep theirs,
    /// detached from future snapshots).
    pub fn clear(&self) {
        self.counters
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clear();
        self.gauges
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clear();
        self.histograms
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clear();
    }
}

/// Point-in-time summary of a histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Mean sample.
    pub mean: f64,
    /// Approximate median.
    pub p50: u64,
    /// Approximate 95th percentile.
    pub p95: u64,
    /// Approximate 99th percentile.
    pub p99: u64,
    /// Exact maximum.
    pub max: u64,
}

/// Point-in-time values of every registered instrument.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = Registry::default();
        let c = reg.counter("steps");
        c.inc();
        c.add(4);
        assert_eq!(reg.counter("steps").get(), 5);
        let g = reg.gauge("drift");
        g.set(-3.5);
        assert_eq!(reg.gauge("drift").get(), -3.5);
    }

    #[test]
    fn histogram_buckets_monotone() {
        // index must be monotone non-decreasing in the sample value
        let mut prev = 0;
        for v in (0..2000u64).chain([1 << 20, (1 << 20) + 1, u64::MAX]) {
            let i = Histogram::index(v);
            assert!(i >= prev, "index not monotone at {v}: {i} < {prev}");
            prev = i;
            // floor of the bucket must not exceed the value
            assert!(
                Histogram::bucket_floor(i) <= v.max(1),
                "floor > value at {v}"
            );
        }
    }

    #[test]
    fn histogram_quantiles_bracket() {
        let reg = Registry::default();
        let h = reg.histogram("lat");
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max(), 1000);
        let p50 = h.quantile(0.5);
        // log-linear: relative error ≤ 1/SUB
        assert!((350..=500).contains(&p50), "p50 {p50}");
        let p99 = h.quantile(0.99);
        assert!((700..=990).contains(&p99), "p99 {p99}");
        assert!((h.mean() - 500.5).abs() < 1.0);
    }

    #[test]
    fn snapshot_collects_everything() {
        let reg = Registry::default();
        reg.counter("a").add(2);
        reg.gauge("b").set(1.5);
        reg.histogram("c").record(10);
        let s = reg.snapshot();
        assert_eq!(s.counters["a"], 2);
        assert_eq!(s.gauges["b"], 1.5);
        assert_eq!(s.histograms["c"].count, 1);
        reg.clear();
        assert!(reg.snapshot().counters.is_empty());
    }

    #[test]
    fn histogram_concurrent_records() {
        let reg = Registry::default();
        let h = reg.histogram("par");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let h = h.clone();
                s.spawn(move || {
                    for v in 0..1000 {
                        h.record(v);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
    }
}
