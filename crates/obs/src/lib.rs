//! `agcm-obs` — operator-level observability for the dynamical core.
//!
//! The paper's argument is a communication ledger (13→2 halo exchanges,
//! 3M→2M z-collectives per step, computation/communication overlap); this
//! crate makes that ledger *observable* on a running model instead of
//! only statically countable:
//!
//! * **span tracer** ([`span`], [`span_phase`], [`drain`]) — wall-clock +
//!   logical timestamps for every operator application (`A`, `C`, `F`,
//!   `L`, `S1`, `S2`), nonlinear iteration, halo exchange and collective,
//!   tagged with rank, time step, and operator [`Phase`];
//! * **metrics registry** ([`Registry`]) — counters, gauges and
//!   log-linear histograms for cumulative aggregates (message latency,
//!   per-operator wall time, physics health gauges);
//! * **exporters** ([`chrome_trace_json`], [`metrics_json`],
//!   [`TraceReport`]) — a Chrome-trace/Perfetto timeline and a
//!   `BENCH_*.json`-style metrics dump, including the per-step
//!   **overlap-efficiency profile** (how much exchange wait is hidden
//!   behind inner-region computation in Algorithm 2, §4.3.1).
//!
//! # Cost model
//!
//! Tracing is off by default.  Every instrumentation site, when tracing
//! is disabled, costs one relaxed atomic load ([`enabled`]) — verified by
//! the `obs_overhead` benchmark in `agcm-bench` to be < 2% of a
//! `dycore_step`.  Building with `default-features = false` (dropping
//! the `trace` feature) compiles every site down to nothing.
//!
//! # Usage
//!
//! ```
//! use agcm_obs as obs;
//!
//! let _guard = obs::exclusive(); // tracer state is process-global
//! obs::reset();
//! obs::enable();
//! {
//!     let _s = obs::span_phase(obs::SpanKind::Op, obs::Phase::A, "adaptation");
//!     // ... operator body; nested comm events inherit Phase::A ...
//! }
//! obs::disable();
//! let events = obs::drain();
//! let report = obs::TraceReport::from_events(&events);
//! let timeline = obs::chrome_trace_json(&events);
//! assert!(obs::validate_json(&timeline).is_ok());
//! # let _ = report;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
mod export;
mod metrics;
mod phase;
mod tracer;

pub use export::{
    chrome_trace_json, metrics_json, validate_chrome_trace, validate_json, DurQuantiles,
    PhaseImbalance, StepOverlap, TraceReport,
};
pub use metrics::{Counter, Gauge, Histogram, HistogramSummary, MetricsSnapshot, Registry};
pub use phase::{current_phase, Phase};
pub use tracer::{
    disable, drain, enable, enabled, exclusive, now_ns, pending_events, record_span, record_value,
    reset, set_rank, set_step, span, span_phase, Event, Span, SpanKind,
};
