//! Exporters: Chrome-trace/Perfetto JSON timeline, metrics JSON dump, and
//! the derived aggregates (per-operator wall time, per-rank load
//! imbalance, overlap efficiency).
//!
//! The workspace is dependency-free, so JSON is hand-rolled: a small
//! writer with correct string escaping and a minimal recursive-descent
//! validator ([`validate_json`]) used by the `figures trace` smoke test to
//! prove the emitted files parse.

use crate::metrics::MetricsSnapshot;
use crate::phase::Phase;
use crate::tracer::{Event, SpanKind};
use std::collections::BTreeMap;
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// JSON writing helpers
// ---------------------------------------------------------------------------

/// Append `s` as a JSON string literal (with escaping) to `out`.
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Format an `f64` as a JSON number (`null`-free: non-finite clamps to 0).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

// ---------------------------------------------------------------------------
// Chrome trace format
// ---------------------------------------------------------------------------

/// Render events as a Chrome-trace/Perfetto JSON document.
///
/// Complete (`"ph":"X"`) events with microsecond timestamps; `pid` is the
/// constant 1 (one process), `tid` is the rank, so Perfetto draws one
/// timeline row per rank.  Open the file at <https://ui.perfetto.dev> or
/// `chrome://tracing`.
pub fn chrome_trace_json(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 128 + 64);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        push_json_str(&mut out, e.name);
        out.push_str(",\"cat\":");
        push_json_str(&mut out, e.kind.label());
        // instants render as zero-length complete events; keep "X" so the
        // validator has a single shape to check
        let _ = write!(
            &mut out,
            ",\"ph\":\"X\",\"ts\":{}.{:03},\"dur\":{}.{:03},\"pid\":1,\"tid\":{}",
            e.t0_ns / 1_000,
            e.t0_ns % 1_000,
            e.dur_ns() / 1_000,
            e.dur_ns() % 1_000,
            e.rank
        );
        let _ = write!(
            &mut out,
            ",\"args\":{{\"phase\":\"{}\",\"step\":{},\"seq\":{},\"bytes\":{},\"value\":{}}}}}",
            e.phase.label(),
            e.step,
            e.seq,
            e.bytes,
            json_f64(e.value)
        );
    }
    out.push_str("]}");
    out
}

// ---------------------------------------------------------------------------
// Derived aggregates
// ---------------------------------------------------------------------------

/// Per-phase load-imbalance figure across ranks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseImbalance {
    /// Busiest rank's total wall time in this phase (ns).
    pub max_ns: u64,
    /// Mean over ranks (ns).
    pub avg_ns: f64,
    /// `max / avg` (1.0 = perfectly balanced; 0 when the phase is empty).
    pub imbalance: f64,
}

/// Overlap-efficiency summary for one time step (ranks aggregated).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepOverlap {
    /// Time step.
    pub step: u64,
    /// Total compute deliberately placed inside exchange windows (ns,
    /// summed over ranks).
    pub overlap_compute_ns: u64,
    /// Total time spent waiting on exchange completion (ns, summed over
    /// ranks).
    pub wait_ns: u64,
}

impl StepOverlap {
    /// Fraction of each exchange window covered by useful computation:
    /// `compute / (compute + wait)`.  1.0 means the wait was fully hidden.
    pub fn efficiency(&self) -> f64 {
        let total = self.overlap_compute_ns + self.wait_ns;
        if total == 0 {
            0.0
        } else {
            self.overlap_compute_ns as f64 / total as f64
        }
    }
}

/// Exact quantiles over a set of span durations (ns), computed by sorting
/// — unlike the log-linear histogram summaries, which carry up to 25%
/// relative bucket error.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DurQuantiles {
    /// Number of spans.
    pub count: u64,
    /// Exact median duration (ns).
    pub p50_ns: u64,
    /// Exact 95th-percentile duration (ns).
    pub p95_ns: u64,
    /// Exact 99th-percentile duration (ns).
    pub p99_ns: u64,
    /// Longest duration (ns).
    pub max_ns: u64,
}

impl DurQuantiles {
    /// Compute from an unsorted duration list (sorts in place).
    pub fn from_durations(durs: &mut [u64]) -> DurQuantiles {
        if durs.is_empty() {
            return DurQuantiles::default();
        }
        durs.sort_unstable();
        let n = durs.len();
        let at = |q: f64| {
            let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
            durs[idx]
        };
        DurQuantiles {
            count: n as u64,
            p50_ns: at(0.50),
            p95_ns: at(0.95),
            p99_ns: at(0.99),
            max_ns: durs[n - 1],
        }
    }
}

/// Aggregates derived from one drained event stream.
#[derive(Debug, Clone, Default)]
pub struct TraceReport {
    /// Total operator wall time by phase label (ns, summed over ranks).
    pub op_wall_ns: BTreeMap<&'static str, u64>,
    /// Number of operator spans by phase label.
    pub op_count: BTreeMap<&'static str, u64>,
    /// Load imbalance by phase label.
    pub imbalance: BTreeMap<&'static str, PhaseImbalance>,
    /// Per-step overlap profile, ascending by step.
    pub overlap: Vec<StepOverlap>,
    /// Exact quantiles of individual exchange-wait span durations — the
    /// tail of this distribution is what the overlap scheme must hide.
    pub wait_quantiles: DurQuantiles,
    /// Number of ranks observed.
    pub ranks: usize,
    /// Total events aggregated.
    pub events: usize,
}

impl TraceReport {
    /// Mean overlap efficiency over steps that had any exchange window.
    pub fn mean_overlap_efficiency(&self) -> f64 {
        let active: Vec<f64> = self
            .overlap
            .iter()
            .filter(|s| s.overlap_compute_ns + s.wait_ns > 0)
            .map(|s| s.efficiency())
            .collect();
        if active.is_empty() {
            0.0
        } else {
            active.iter().sum::<f64>() / active.len() as f64
        }
    }

    /// Build the report from a drained event stream.
    pub fn from_events(events: &[Event]) -> TraceReport {
        let mut rep = TraceReport {
            events: events.len(),
            ..TraceReport::default()
        };
        // phase -> rank -> ns, for imbalance
        let mut per_rank: BTreeMap<&'static str, BTreeMap<usize, u64>> = BTreeMap::new();
        let mut ranks: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
        let mut overlap: BTreeMap<u64, StepOverlap> = BTreeMap::new();
        let mut wait_durs: Vec<u64> = Vec::new();
        for e in events {
            ranks.insert(e.rank);
            match e.kind {
                SpanKind::Op => {
                    let label = e.phase.label();
                    *rep.op_wall_ns.entry(label).or_insert(0) += e.dur_ns();
                    *rep.op_count.entry(label).or_insert(0) += 1;
                    *per_rank
                        .entry(label)
                        .or_default()
                        .entry(e.rank)
                        .or_insert(0) += e.dur_ns();
                }
                SpanKind::OverlapCompute => {
                    let s = overlap.entry(e.step).or_insert(StepOverlap {
                        step: e.step,
                        overlap_compute_ns: 0,
                        wait_ns: 0,
                    });
                    s.overlap_compute_ns += e.dur_ns();
                }
                SpanKind::ExchangeWait => {
                    let s = overlap.entry(e.step).or_insert(StepOverlap {
                        step: e.step,
                        overlap_compute_ns: 0,
                        wait_ns: 0,
                    });
                    s.wait_ns += e.dur_ns();
                    wait_durs.push(e.dur_ns());
                }
                _ => {}
            }
        }
        rep.ranks = ranks.len();
        let nranks = rep.ranks.max(1) as f64;
        for (label, by_rank) in &per_rank {
            let max_ns = by_rank.values().copied().max().unwrap_or(0);
            let sum: u64 = by_rank.values().sum();
            // average over *participating* ranks' universe, i.e. all ranks
            // seen in the stream: a rank idle in this phase drags avg down
            let avg_ns = sum as f64 / nranks;
            let imbalance = if avg_ns > 0.0 {
                max_ns as f64 / avg_ns
            } else {
                0.0
            };
            rep.imbalance.insert(
                label,
                PhaseImbalance {
                    max_ns,
                    avg_ns,
                    imbalance,
                },
            );
        }
        rep.overlap = overlap.into_values().collect();
        rep.wait_quantiles = DurQuantiles::from_durations(&mut wait_durs);
        rep
    }
}

/// Render a [`TraceReport`] plus a [`MetricsSnapshot`] as a metrics JSON
/// document shaped like the repo's `BENCH_*.json` dumps.
pub fn metrics_json(label: &str, report: &TraceReport, metrics: &MetricsSnapshot) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"label\": ");
    push_json_str(&mut out, label);
    let _ = write!(
        &mut out,
        ",\n  \"ranks\": {},\n  \"events\": {},\n",
        report.ranks, report.events
    );

    out.push_str("  \"op_wall_ns\": {");
    for (i, (k, v)) in report.op_wall_ns.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        push_json_str(&mut out, k);
        let _ = write!(&mut out, ": {v}");
    }
    out.push_str("\n  },\n");

    out.push_str("  \"op_count\": {");
    for (i, (k, v)) in report.op_count.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        push_json_str(&mut out, k);
        let _ = write!(&mut out, ": {v}");
    }
    out.push_str("\n  },\n");

    out.push_str("  \"load_imbalance\": {");
    for (i, (k, v)) in report.imbalance.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        push_json_str(&mut out, k);
        let _ = write!(
            &mut out,
            ": {{\"max_ns\": {}, \"avg_ns\": {}, \"imbalance\": {}}}",
            v.max_ns,
            json_f64(v.avg_ns),
            json_f64(v.imbalance)
        );
    }
    out.push_str("\n  },\n");

    out.push_str("  \"overlap\": [");
    for (i, s) in report.overlap.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            &mut out,
            "\n    {{\"step\": {}, \"overlap_compute_ns\": {}, \"wait_ns\": {}, \"efficiency\": {}}}",
            s.step,
            s.overlap_compute_ns,
            s.wait_ns,
            json_f64(s.efficiency())
        );
    }
    out.push_str("\n  ],\n");
    let _ = writeln!(
        &mut out,
        "  \"mean_overlap_efficiency\": {},",
        json_f64(report.mean_overlap_efficiency())
    );
    let wq = &report.wait_quantiles;
    let _ = writeln!(
        &mut out,
        "  \"wait_quantiles\": {{\"count\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}},",
        wq.count, wq.p50_ns, wq.p95_ns, wq.p99_ns, wq.max_ns
    );

    out.push_str("  \"counters\": {");
    for (i, (k, v)) in metrics.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        push_json_str(&mut out, k);
        let _ = write!(&mut out, ": {v}");
    }
    out.push_str("\n  },\n");

    out.push_str("  \"gauges\": {");
    for (i, (k, v)) in metrics.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        push_json_str(&mut out, k);
        let _ = write!(&mut out, ": {}", json_f64(*v));
    }
    out.push_str("\n  },\n");

    out.push_str("  \"histograms\": {");
    for (i, (k, v)) in metrics.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        push_json_str(&mut out, k);
        let _ = write!(
            &mut out,
            ": {{\"count\": {}, \"sum\": {}, \"mean\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}}",
            v.count,
            v.sum,
            json_f64(v.mean),
            v.p50,
            v.p95,
            v.p99,
            v.max
        );
    }
    out.push_str("\n  }\n}\n");
    out
}

// ---------------------------------------------------------------------------
// Minimal JSON validator
// ---------------------------------------------------------------------------

/// Validate that `src` is a single well-formed JSON value (recursive
/// descent over the RFC 8259 grammar; no value tree is built).
///
/// Returns the error position (byte offset) and message on failure.
pub fn validate_json(src: &str) -> Result<(), String> {
    let b = src.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.i != b.len() {
        return Err(format!("trailing data at byte {}", p.i));
    }
    Ok(())
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.i)
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected value")),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => self.i += 1,
                        Some(b'u') => {
                            self.i += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.i += 1,
                                    _ => return Err(self.err("bad \\u escape")),
                                }
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control char in string")),
                Some(_) => self.i += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let mut digits = 0;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.i += 1;
            digits += 1;
        }
        if digits == 0 {
            return Err(self.err("expected digit"));
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            let mut frac = 0;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
                frac += 1;
            }
            if frac == 0 {
                return Err(self.err("expected fraction digit"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            let mut exp = 0;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
                exp += 1;
            }
            if exp == 0 {
                return Err(self.err("expected exponent digit"));
            }
        }
        Ok(())
    }
}

/// Check that a Chrome-trace document is well-formed JSON *and* contains
/// at least `min_per_phase` operator spans for each phase label in
/// `phases` (textual scan — good enough for the smoke test without a DOM).
pub fn validate_chrome_trace(
    src: &str,
    phases: &[Phase],
    min_per_phase: usize,
) -> Result<(), String> {
    validate_json(src)?;
    if !src.contains("\"traceEvents\"") {
        return Err("missing traceEvents key".to_string());
    }
    for p in phases {
        let needle = format!("\"phase\":\"{}\"", p.label());
        let count = src.matches(&needle).count();
        if count < min_per_phase {
            return Err(format!(
                "phase {} has {count} spans, want >= {min_per_phase}",
                p.label()
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::SpanKind;

    fn ev(rank: usize, step: u64, kind: SpanKind, phase: Phase, t0: u64, t1: u64) -> Event {
        Event {
            rank,
            step,
            kind,
            phase,
            name: "t",
            t0_ns: t0,
            t1_ns: t1,
            seq: t0,
            bytes: 0,
            value: 0.0,
        }
    }

    #[test]
    fn validator_accepts_valid_rejects_invalid() {
        assert!(validate_json(r#"{"a":[1,2.5,-3e2],"b":"x\n","c":null}"#).is_ok());
        assert!(validate_json("[]").is_ok());
        assert!(validate_json("  true ").is_ok());
        assert!(validate_json(r#"{"a":}"#).is_err());
        assert!(validate_json(r#"{"a":1,}"#).is_err());
        assert!(validate_json("[1,2").is_err());
    }

    #[test]
    fn validator_rejects_trailing() {
        assert!(validate_json("1 2").is_err());
        assert!(validate_json("\"unterminated").is_err());
    }

    #[test]
    fn chrome_trace_is_valid_json() {
        let evs = vec![
            ev(0, 0, SpanKind::Op, Phase::A, 0, 100),
            ev(1, 0, SpanKind::Collective, Phase::C, 50, 90),
        ];
        let doc = chrome_trace_json(&evs);
        validate_json(&doc).expect("valid");
        assert!(doc.contains("\"traceEvents\""));
        assert!(doc.contains("\"phase\":\"A\""));
        validate_chrome_trace(&doc, &[Phase::A], 1).expect("has A span");
        assert!(validate_chrome_trace(&doc, &[Phase::L], 1).is_err());
    }

    #[test]
    fn report_aggregates_ops_and_overlap() {
        let evs = vec![
            // rank 0: op A 100ns, overlap 80ns, wait 20ns at step 1
            ev(0, 1, SpanKind::Op, Phase::A, 0, 100),
            ev(0, 1, SpanKind::OverlapCompute, Phase::L, 100, 180),
            ev(0, 1, SpanKind::ExchangeWait, Phase::Other, 180, 200),
            // rank 1: op A 300ns, no overlap data
            ev(1, 1, SpanKind::Op, Phase::A, 0, 300),
        ];
        let rep = TraceReport::from_events(&evs);
        assert_eq!(rep.ranks, 2);
        assert_eq!(rep.op_wall_ns["A"], 400);
        assert_eq!(rep.op_count["A"], 2);
        let imb = rep.imbalance["A"];
        assert_eq!(imb.max_ns, 300);
        assert!((imb.avg_ns - 200.0).abs() < 1e-9);
        assert!((imb.imbalance - 1.5).abs() < 1e-9);
        assert_eq!(rep.overlap.len(), 1);
        let s = rep.overlap[0];
        assert_eq!(s.step, 1);
        assert!((s.efficiency() - 0.8).abs() < 1e-9);
        assert!((rep.mean_overlap_efficiency() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn metrics_json_is_valid() {
        let evs = vec![ev(0, 0, SpanKind::Op, Phase::F, 0, 10)];
        let rep = TraceReport::from_events(&evs);
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("x".into(), 3);
        snap.gauges.insert("mass_drift".into(), 1e-12);
        let doc = metrics_json("alg2", &rep, &snap);
        validate_json(&doc).expect("valid metrics json");
        assert!(doc.contains("\"mean_overlap_efficiency\""));
        assert!(doc.contains("\"load_imbalance\""));
    }
}
