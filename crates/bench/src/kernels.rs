//! Per-operator kernel micro-benchmark: row-sliced kernels vs their scalar
//! golden references.
//!
//! Each hot operator of the dynamical core step is timed twice over the same
//! randomized state — once through the row-slice path the models run, once
//! through the `*_scalar` reference (exposed by the `scalar-ref` feature of
//! `agcm-core`) — and reported in ns/point.  The module is shared by the
//! `kernels` bench harness and the `figures perf` subcommand, which emits
//! the results as `BENCH_kernels.json`.

use crate::timing::{bench_stats, Stats};
use agcm_core::adaptation::{adaptation_tendency, adaptation_tendency_scalar};
use agcm_core::advection::{advection_tendency, advection_tendency_scalar};
use agcm_core::diag::Diag;
use agcm_core::pool;
use agcm_core::smoothing::{smooth_rows, smooth_rows_scalar, RowMask};
use agcm_core::stdatm::StandardAtmosphere;
use agcm_core::vertical::{apply_c, apply_c_scalar, ZContext};
use agcm_core::{LocalGeometry, ModelConfig, Region, State};
use agcm_fft::{FilterScratch, FourierFilter};
use agcm_mesh::{Decomposition, Field2, Field3, HaloWidths, ProcessGrid};
use std::fmt::Write as _;
use std::sync::Arc;

/// Timing result for one operator: row path vs scalar reference.
#[derive(Debug, Clone)]
pub struct KernelPerf {
    /// Operator name (`adaptation`, `advection`, `smoothing`, `vertical_c`,
    /// `fft_filter`).
    pub name: &'static str,
    /// Grid points the operator touches per invocation.
    pub points: usize,
    /// Median ns/point of the row-slice path (what the models run).
    pub row_ns_per_point: f64,
    /// Median ns/point of the scalar golden reference.
    pub scalar_ns_per_point: f64,
    /// `scalar_ns_per_point / row_ns_per_point` — ≥ 1 means the rewrite won.
    pub speedup: f64,
}

fn splitmix64(s: &mut u64) -> u64 {
    *s = s.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *s;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn rand_sym(s: &mut u64) -> f64 {
    (splitmix64(s) >> 11) as f64 / (1u64 << 52) as f64 - 1.0
}

fn rand_pos(s: &mut u64) -> f64 {
    0.5 + (splitmix64(s) >> 12) as f64 / (1u64 << 52) as f64
}

fn fill3(f: &mut Field3, s: &mut u64) {
    for v in f.raw_mut() {
        *v = rand_sym(s);
    }
}

fn fill2(f: &mut Field2, s: &mut u64) {
    for v in f.raw_mut() {
        *v = rand_sym(s);
    }
}

fn fill2_pos(f: &mut Field2, s: &mut u64) {
    for v in f.raw_mut() {
        *v = rand_pos(s);
    }
}

fn serial_geom(cfg: &ModelConfig) -> LocalGeometry {
    let grid = Arc::new(cfg.grid().expect("valid bench config"));
    let d = Decomposition::new(cfg.extents(), ProcessGrid::serial()).expect("serial decomp");
    LocalGeometry::new(cfg, grid, &d, 0, HaloWidths::uniform(2))
}

fn random_state(geom: &LocalGeometry, seed: u64) -> State {
    let mut s = seed;
    let mut st = State::new(geom.nx, geom.ny, geom.nz, geom.halo);
    fill3(&mut st.u, &mut s);
    fill3(&mut st.v, &mut s);
    fill3(&mut st.phi, &mut s);
    fill2(&mut st.psa, &mut s);
    st
}

fn random_diag(geom: &LocalGeometry, seed: u64) -> Diag {
    let mut s = seed;
    let mut d = Diag::new(geom);
    fill2_pos(&mut d.pes, &mut s);
    fill2_pos(&mut d.cap_p, &mut s);
    fill2(&mut d.dsa, &mut s);
    fill3(&mut d.dp, &mut s);
    fill2(&mut d.vsum, &mut s);
    fill3(&mut d.gw, &mut s);
    fill3(&mut d.phi_p, &mut s);
    d
}

fn ns_per_point(s: &Stats, points: usize) -> f64 {
    s.median.as_nanos() as f64 / points as f64
}

fn perf(name: &'static str, points: usize, row: Stats, scalar: Stats) -> KernelPerf {
    let row_ns = ns_per_point(&row, points);
    let scalar_ns = ns_per_point(&scalar, points);
    KernelPerf {
        name,
        points,
        row_ns_per_point: row_ns,
        scalar_ns_per_point: scalar_ns,
        speedup: scalar_ns / row_ns,
    }
}

/// Time every rewritten operator on `cfg`'s serial geometry, row path vs
/// scalar reference, under the ambient worker-pool setting.  `warmup`
/// untimed + `iters` timed invocations each; medians are reported.
pub fn measure_kernels(cfg: &ModelConfig, warmup: usize, iters: usize) -> Vec<KernelPerf> {
    let geom = serial_geom(cfg);
    let region = Region {
        y0: 0,
        y1: geom.ny as isize,
        z0: 0,
        z1: geom.nz as isize,
    };
    let points = geom.nx * geom.ny * geom.nz;
    let mut seed = 0x00C0FFEE;

    let arg = random_state(&geom, splitmix64(&mut seed));
    let diag = random_diag(&geom, splitmix64(&mut seed));
    let mut tend = random_state(&geom, splitmix64(&mut seed));
    let mut out = Vec::new();

    let row = bench_stats(warmup, iters, || {
        adaptation_tendency(&geom, &arg, &diag, &mut tend, region)
    });
    let scalar = bench_stats(warmup, iters, || {
        adaptation_tendency_scalar(&geom, &arg, &diag, &mut tend, region)
    });
    out.push(perf("adaptation", points, row, scalar));

    let row = bench_stats(warmup, iters, || {
        advection_tendency(&geom, &arg, &diag, &mut tend, region)
    });
    let scalar = bench_stats(warmup, iters, || {
        advection_tendency_scalar(&geom, &arg, &diag, &mut tend, region)
    });
    out.push(perf("advection", points, row, scalar));

    let row = bench_stats(warmup, iters, || {
        smooth_rows(&geom, 0.1, &arg, &mut tend, region, RowMask::FULL, false)
    });
    let scalar = bench_stats(warmup, iters, || {
        smooth_rows_scalar(&geom, 0.1, &arg, &mut tend, region, RowMask::FULL, false)
    });
    out.push(perf("smoothing", points, row, scalar));

    let stdatm = StandardAtmosphere::new(&geom.grid);
    let mut dwork = random_diag(&geom, splitmix64(&mut seed));
    let row = bench_stats(warmup, iters, || {
        apply_c(
            &geom,
            &stdatm,
            &arg,
            &mut dwork,
            region,
            &ZContext::Serial,
            true,
        )
        .unwrap()
    });
    let scalar = bench_stats(warmup, iters, || {
        apply_c_scalar(
            &geom,
            &stdatm,
            &arg,
            &mut dwork,
            region,
            &ZContext::Serial,
            true,
        )
        .unwrap()
    });
    out.push(perf("vertical_c", points, row, scalar));

    // FFT filter: scratch-reusing path vs per-call-allocating reference over
    // every polar row the profile damps.  Both paths recopy the pristine row
    // first so they transform identical data each iteration.
    let grid = &geom.grid;
    let lats: Vec<f64> = (0..grid.ny()).map(|j| grid.latitude(j)).collect();
    let filter = FourierFilter::new(grid.nx(), &lats, cfg.filter_cutoff_deg.to_radians());
    let active: Vec<usize> = (0..grid.ny()).filter(|&j| filter.is_active(j)).collect();
    let pristine: Vec<f64> = {
        let mut s = splitmix64(&mut seed);
        (0..grid.nx()).map(|_| rand_sym(&mut s)).collect()
    };
    let mut rowbuf = pristine.clone();
    let mut scratch = FilterScratch::new();
    let fpoints = active.len().max(1) * grid.nx();
    let row = bench_stats(warmup, iters, || {
        for &j in &active {
            rowbuf.copy_from_slice(&pristine);
            filter.apply_row_with(j, &mut rowbuf, &mut scratch);
        }
    });
    let scalar = bench_stats(warmup, iters, || {
        for &j in &active {
            rowbuf.copy_from_slice(&pristine);
            filter.apply_row(j, &mut rowbuf);
        }
    });
    out.push(perf("fft_filter", fpoints, row, scalar));

    out
}

/// Render measurements as the `BENCH_kernels.json` document (RFC 8259).
pub fn to_json(cfg_name: &str, warmup: usize, iters: usize, kernels: &[KernelPerf]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"kernels\",");
    let _ = writeln!(s, "  \"config\": \"{cfg_name}\",");
    let _ = writeln!(s, "  \"threads\": {},", pool::workers());
    let _ = writeln!(s, "  \"warmup\": {warmup},");
    let _ = writeln!(s, "  \"iters\": {iters},");
    s.push_str("  \"kernels\": [\n");
    for (i, k) in kernels.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"name\": \"{}\", \"points\": {}, \"row_ns_per_point\": {:.3}, \
             \"scalar_ns_per_point\": {:.3}, \"speedup\": {:.3}}}",
            k.name, k.points, k.row_ns_per_point, k.scalar_ns_per_point, k.speedup
        );
        s.push_str(if i + 1 < kernels.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Pull `(name, speedup)` pairs back out of a `BENCH_kernels.json` document.
///
/// Purpose-built for the CI perf gate: speedup *ratios* are machine-portable
/// where raw ns/point are not.  Accepts exactly the shape [`to_json`] emits.
pub fn parse_speedups(src: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in src.lines() {
        let Some(n0) = line.find("\"name\": \"") else {
            continue;
        };
        let rest = &line[n0 + 9..];
        let Some(n1) = rest.find('"') else { continue };
        let name = rest[..n1].to_string();
        let Some(s0) = line.find("\"speedup\": ") else {
            continue;
        };
        let tail = &line[s0 + 11..];
        let num: String = tail
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
            .collect();
        if let Ok(v) = num.parse::<f64>() {
            out.push((name, v));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips_and_validates() {
        let kernels = vec![
            KernelPerf {
                name: "adaptation",
                points: 1000,
                row_ns_per_point: 1.5,
                scalar_ns_per_point: 4.5,
                speedup: 3.0,
            },
            KernelPerf {
                name: "fft_filter",
                points: 64,
                row_ns_per_point: 10.0,
                scalar_ns_per_point: 12.0,
                speedup: 1.2,
            },
        ];
        let doc = to_json("test_small", 2, 5, &kernels);
        agcm_obs::validate_json(&doc).expect("emitted JSON must be RFC 8259 valid");
        let speedups = parse_speedups(&doc);
        assert_eq!(speedups.len(), 2);
        assert_eq!(speedups[0], ("adaptation".to_string(), 3.0));
        assert_eq!(speedups[1], ("fft_filter".to_string(), 1.2));
    }

    #[test]
    fn measure_kernels_covers_every_operator() {
        let perfs = measure_kernels(&ModelConfig::test_small(), 0, 1);
        let names: Vec<_> = perfs.iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            [
                "adaptation",
                "advection",
                "smoothing",
                "vertical_c",
                "fft_filter"
            ]
        );
        for p in &perfs {
            assert!(p.points > 0);
            assert!(p.row_ns_per_point > 0.0, "{}: zero row time", p.name);
            assert!(p.scalar_ns_per_point > 0.0, "{}: zero scalar time", p.name);
            assert!(p.speedup > 0.0);
        }
    }
}
