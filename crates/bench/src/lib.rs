//! # agcm-bench — benchmark harness for the paper's evaluation
//!
//! One binary (`figures`) regenerates every table and figure of Xiao et al.
//! (ICPP 2018) §5, and the Criterion benches under `benches/` measure the
//! real (thread-backed) implementations at laptop scales plus the design
//! ablations listed in `DESIGN.md` §12.
//!
//! Reproduction strategy (see `DESIGN.md` §2): the executing runtime
//! validates the algorithms and their exact per-rank traffic at small rank
//! counts (`tests/prediction_validation.rs`); the calibrated α–β–γ–sync
//! cost model then evaluates the *same* traffic at the paper's 128–1024
//! ranks.  `EXPERIMENTS.md` records paper-vs-reproduced shapes.

#![forbid(unsafe_code)]
use agcm_comm::CostModel;
use agcm_core::analysis::{predict_step_mode, AlgKind, CaMode, StepCost};
use agcm_core::ModelConfig;
use agcm_mesh::ProcessGrid;

pub mod kernels;
pub mod timing;

/// The rank counts of the paper's evaluation.
pub const PAPER_RANKS: [usize; 4] = [128, 256, 512, 1024];

/// Steps in a 10-model-year run at the configuration's advection step
/// (the paper's benchmark length).
pub fn steps_10_years(cfg: &ModelConfig) -> f64 {
    10.0 * 365.25 * 86400.0 / cfg.dt2
}

/// The Y-Z process grid used for `p` total ranks on the paper mesh
/// (z-direction capped at 8, as `p_z ≤ n_z/2` and powers of two compose).
pub fn yz_grid(p: usize) -> ProcessGrid {
    let pz = 8.min(p / 16).max(2);
    ProcessGrid::yz(p / pz, pz).expect("valid Y-Z grid")
}

/// The X-Y process grid used for `p` total ranks.
pub fn xy_grid(p: usize) -> ProcessGrid {
    let px = 16.min(p / 8).max(2);
    ProcessGrid::xy(px, p / px).expect("valid X-Y grid")
}

/// Predict one step of the given algorithm at `p` ranks on `cfg`.
pub fn predict(cfg: &ModelConfig, alg: AlgKind, p: usize, model: &CostModel) -> StepCost {
    let pg = match alg {
        AlgKind::OriginalXY => xy_grid(p),
        _ => yz_grid(p),
    };
    predict_step_mode(cfg, alg, pg, model, CaMode::Grouped)
}

/// As [`predict`] but with the paper-idealized CA accounting (always two
/// full-depth exchanges; see `analysis::CaMode::PaperIdeal`).
pub fn predict_ideal(cfg: &ModelConfig, alg: AlgKind, p: usize, model: &CostModel) -> StepCost {
    let pg = match alg {
        AlgKind::OriginalXY => xy_grid(p),
        _ => yz_grid(p),
    };
    predict_step_mode(cfg, alg, pg, model, CaMode::PaperIdeal)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_multiply_to_p() {
        for p in PAPER_RANKS {
            assert_eq!(yz_grid(p).size(), p);
            assert_eq!(xy_grid(p).size(), p);
        }
    }

    #[test]
    fn ten_year_step_count() {
        let cfg = ModelConfig::paper_50km();
        let k = steps_10_years(&cfg);
        assert!((520_000.0..530_000.0).contains(&k), "k = {k}");
    }

    #[test]
    fn headline_claims_reproduce() {
        // the shape assertions the harness prints — checked in CI
        let cfg = ModelConfig::paper_50km();
        let model = CostModel::tianhe2();
        let xy = predict(&cfg, AlgKind::OriginalXY, 512, &model);
        let yz = predict(&cfg, AlgKind::OriginalYZ, 512, &model);
        let ca = predict(&cfg, AlgKind::CommAvoiding, 512, &model);
        // paper: 54% total-runtime reduction vs X-Y at p = 512
        let reduction = 1.0 - ca.total_s() / xy.total_s();
        assert!(
            (0.40..0.70).contains(&reduction),
            "CA-vs-XY reduction {reduction}"
        );
        // paper: 1.4x average vs Y-Z
        let speedup = yz.total_s() / ca.total_s();
        assert!((1.2..1.7).contains(&speedup), "CA-vs-YZ speedup {speedup}");
        // paper: 1.4x collective speedup
        let coll = yz.collective_comm_s / ca.collective_comm_s;
        assert!((1.25..1.7).contains(&coll), "collective speedup {coll}");
        // paper: 3x-6x stencil speedup (3.9 average) — grouped mode lands
        // at the low end, the idealized accounting at the high end
        let st_grouped = yz.stencil_comm_s / ca.stencil_comm_s;
        let cai = predict_ideal(&cfg, AlgKind::CommAvoiding, 512, &model);
        let st_ideal = yz.stencil_comm_s / cai.stencil_comm_s;
        assert!(st_grouped > 2.0, "grouped stencil speedup {st_grouped}");
        assert!(st_ideal > 3.5, "ideal stencil speedup {st_ideal}");
    }
}
