//! Minimal wall-clock benchmark loop used by the `benches/` harnesses.
//!
//! The workspace builds fully offline, so the benches are plain
//! `harness = false` binaries over this loop instead of a framework: each
//! case is warmed up once, timed `iters` times, and reported as
//! min / median / max.  Run with `cargo bench` as usual.

use std::time::{Duration, Instant};

/// Time `f` `iters` times (after one warm-up call) and print a one-line
/// summary.  Returns the median iteration time.
pub fn bench<T>(name: &str, iters: usize, mut f: impl FnMut() -> T) -> Duration {
    std::hint::black_box(f());
    let mut times: Vec<Duration> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        std::hint::black_box(f());
        times.push(t0.elapsed());
    }
    times.sort();
    let median = times[times.len() / 2];
    println!(
        "{name:<44} min {:>12?}  median {:>12?}  max {:>12?}  ({iters} iters)",
        times[0],
        median,
        times[times.len() - 1],
    );
    median
}

/// Print a benchmark-group header.
pub fn group(name: &str) {
    println!("\n== {name} ==");
}
