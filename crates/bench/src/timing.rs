//! Minimal wall-clock benchmark loop used by the `benches/` harnesses.
//!
//! The workspace builds fully offline, so the benches are plain
//! `harness = false` binaries over this loop instead of a framework: each
//! case is warmed up, timed `iters` times, and reported as
//! min / median / max.  Run with `cargo bench` as usual.

use std::time::{Duration, Instant};

/// Summary of one benchmark case: `iters` timed runs after `warmup`
/// untimed ones, order statistics over the sorted samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stats {
    /// Fastest observed iteration.
    pub min: Duration,
    /// Median iteration (the headline number — robust to one-off stalls).
    pub median: Duration,
    /// Slowest observed iteration.
    pub max: Duration,
    /// Timed iterations the statistics summarize.
    pub iters: usize,
}

/// Time `f`: `warmup` untimed calls (cache/allocator warm-up), then `iters`
/// timed calls; returns min/median/max order statistics.  No printing — the
/// caller owns presentation (and JSON emission).
pub fn bench_stats<T>(warmup: usize, iters: usize, mut f: impl FnMut() -> T) -> Stats {
    assert!(iters > 0, "need at least one timed iteration");
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let mut times: Vec<Duration> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        std::hint::black_box(f());
        times.push(t0.elapsed());
    }
    times.sort();
    Stats {
        min: times[0],
        median: times[times.len() / 2],
        max: times[times.len() - 1],
        iters,
    }
}

/// Time `f` `iters` times (after one warm-up call) and print a one-line
/// summary.  Returns the median iteration time.
pub fn bench<T>(name: &str, iters: usize, f: impl FnMut() -> T) -> Duration {
    let s = bench_stats(1, iters, f);
    println!(
        "{name:<44} min {:>12?}  median {:>12?}  max {:>12?}  ({iters} iters)",
        s.min, s.median, s.max,
    );
    s.median
}

/// Print a benchmark-group header.
pub fn group(name: &str) {
    println!("\n== {name} ==");
}
