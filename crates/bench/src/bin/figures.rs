//! Regenerate every table and figure of the paper's evaluation (§5).
//!
//! ```text
//! cargo run -p agcm-bench --release --bin figures -- all
//! cargo run -p agcm-bench --release --bin figures -- fig1|fig6|fig7|fig8|theory|tables|validate
//! ```
//!
//! Figures 1, 6, 7, 8 are produced by the calibrated cost model evaluated
//! on the exact per-rank traffic of each algorithm at the paper's rank
//! counts; `validate` re-derives the same counts from *executing* runs at
//! laptop scale and prints the (exact) agreement.  Absolute seconds are
//! model-calibrated; the comparisons the paper draws (who wins, by what
//! factor, where) are the reproduction targets — see EXPERIMENTS.md.

use agcm_bench::{predict, predict_ideal, steps_10_years, PAPER_RANKS};
use agcm_comm::{p2p_only_delta, CostModel, Universe};
use agcm_core::analysis::{self, AlgKind};
use agcm_core::{diagnostics, init, tables, ModelConfig};
use agcm_mesh::ProcessGrid;
use agcm_obs as obs;

fn main() {
    let what = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let cfg = ModelConfig::paper_50km();
    let model = CostModel::tianhe2();
    match what.as_str() {
        "fig1" => fig1(&cfg, &model),
        "fig6" => fig6(&cfg, &model),
        "fig7" => fig7(&cfg, &model),
        "fig8" => fig8(&cfg, &model),
        "theory" => theory(&cfg),
        "tables" => print_tables(),
        "validate" => validate(),
        "verify" => verify(),
        "trace" => {
            trace();
        }
        "trace-dist" => trace_dist(),
        "restart" => restart(),
        "perf" => perf(std::env::args().nth(2)),
        "all" => {
            print_tables();
            fig1(&cfg, &model);
            fig6(&cfg, &model);
            fig7(&cfg, &model);
            fig8(&cfg, &model);
            theory(&cfg);
            validate();
            verify();
            trace_dist();
            restart();
        }
        other => {
            eprintln!("unknown figure '{other}'");
            eprintln!(
                "usage: figures [all|fig1|fig6|fig7|fig8|theory|tables|validate|verify|trace|trace-dist|restart|perf [baseline.json]]"
            );
            std::process::exit(2);
        }
    }
}

fn header(title: &str) {
    println!("\n{:=^78}", format!(" {title} "));
}

/// Figure 1: percentage of time for communication and computation in the
/// dynamical core (original algorithm, Y-Z decomposition, 720x360x30).
fn fig1(cfg: &ModelConfig, model: &CostModel) {
    header("Figure 1 — communication vs computation share of the dynamical core");
    println!(
        "{:>6} {:>14} {:>14} {:>12} {:>12}",
        "p", "comm time ms", "comp time ms", "comm %", "comp %"
    );
    for p in PAPER_RANKS {
        let c = predict(cfg, AlgKind::OriginalYZ, p, model);
        let comm = c.stencil_comm_s + c.collective_comm_s;
        let total = c.total_s();
        println!(
            "{p:>6} {:>14.2} {:>14.2} {:>11.1}% {:>11.1}%",
            comm * 1e3,
            c.compute_s * 1e3,
            100.0 * comm / total,
            100.0 * c.compute_s / total
        );
    }
    println!("paper: \"the communication time dominates the runtime of the dynamical core\"");
}

/// Figure 6: time for collective communication over a 10-model-year run.
fn fig6(cfg: &ModelConfig, model: &CostModel) {
    header("Figure 6 — collective communication time (10 model years)");
    let k = steps_10_years(cfg);
    println!(
        "{:>6} {:>18} {:>18} {:>18} {:>10}",
        "p", "X-Y (F) [s]", "Y-Z (C) [s]", "CA (C) [s]", "YZ/CA"
    );
    let mut speedups = Vec::new();
    for p in PAPER_RANKS {
        let xy = predict(cfg, AlgKind::OriginalXY, p, model).collective_comm_s * k;
        let yz = predict(cfg, AlgKind::OriginalYZ, p, model).collective_comm_s * k;
        let ca = predict(cfg, AlgKind::CommAvoiding, p, model).collective_comm_s * k;
        speedups.push(yz / ca);
        println!(
            "{p:>6} {:>18.0} {:>18.0} {:>18.0} {:>9.2}x",
            xy,
            yz,
            ca,
            yz / ca
        );
    }
    let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
    println!(
        "average Y-Z/CA collective speedup: {avg:.2}x   (paper: 1.4x; one third of the\n\
         z-direction summations removed by the approximate nonlinear iteration, §4.2.2)"
    );
    println!("X-Y's Fourier-filtering collectives dominate, as in the paper's Figure 6.");
}

/// Figure 7: communication time of the stencil computation.
fn fig7(cfg: &ModelConfig, model: &CostModel) {
    header("Figure 7 — stencil (halo) communication time (10 model years)");
    let k = steps_10_years(cfg);
    println!(
        "{:>6} {:>13} {:>13} {:>13} {:>13} {:>8} {:>8}",
        "p", "X-Y [s]", "Y-Z [s]", "CA [s]", "CA-ideal[s]", "YZ/CA", "ideal"
    );
    let mut sp = Vec::new();
    let mut spi = Vec::new();
    for p in PAPER_RANKS {
        let xy = predict(cfg, AlgKind::OriginalXY, p, model).stencil_comm_s * k;
        let yz = predict(cfg, AlgKind::OriginalYZ, p, model).stencil_comm_s * k;
        let ca = predict(cfg, AlgKind::CommAvoiding, p, model).stencil_comm_s * k;
        let cai = predict_ideal(cfg, AlgKind::CommAvoiding, p, model).stencil_comm_s * k;
        sp.push(yz / ca);
        spi.push(yz / cai);
        println!(
            "{p:>6} {:>13.0} {:>13.0} {:>13.0} {:>13.0} {:>7.2}x {:>7.2}x",
            xy,
            yz,
            ca,
            cai,
            yz / ca,
            yz / cai
        );
    }
    println!(
        "average Y-Z/CA stencil speedup: {:.2}x executable (clamped halo depth), {:.2}x under\n\
         the paper's idealized 2-exchange accounting   (paper: 3x-6x, 3.9x average;\n\
         17,400 s -> 2,800 s at p = 1024)",
        sp.iter().sum::<f64>() / sp.len() as f64,
        spi.iter().sum::<f64>() / spi.len() as f64
    );
    // per-rank volumes: the paper's W^stencil comparison (§5.2)
    println!("\nper-rank halo volumes per step (f64 elements) — the paper's W^stencil ordering:");
    println!("{:>6} {:>12} {:>12} {:>12}", "p", "X-Y", "Y-Z", "CA");
    for p in PAPER_RANKS {
        let xy = predict(cfg, AlgKind::OriginalXY, p, model).max.p2p_elems;
        let yz = predict(cfg, AlgKind::OriginalYZ, p, model).max.p2p_elems;
        let ca = predict(cfg, AlgKind::CommAvoiding, p, model).max.p2p_elems;
        println!("{p:>6} {xy:>12} {yz:>12} {ca:>12}");
    }
    println!(
        "W_XY << W_YZ (n_x >> n_y, n_z — §5.2), and CA ships slightly more than Y-Z\n\
         (redundant corner halos) while cutting the frequency from 13 to 2 per step."
    );
}

/// Figure 8: total runtime of the dynamical core.
fn fig8(cfg: &ModelConfig, model: &CostModel) {
    header("Figure 8 — total runtime of the dynamical core (10 model years)");
    let k = steps_10_years(cfg);
    println!(
        "{:>6} {:>13} {:>13} {:>13} {:>10} {:>10}",
        "p", "X-Y [s]", "Y-Z [s]", "CA [s]", "vs XY", "vs YZ"
    );
    let mut best_red: f64 = 0.0;
    let mut yz_speedups = Vec::new();
    for p in PAPER_RANKS {
        let xy = predict(cfg, AlgKind::OriginalXY, p, model).total_s() * k;
        let yz = predict(cfg, AlgKind::OriginalYZ, p, model).total_s() * k;
        let ca = predict(cfg, AlgKind::CommAvoiding, p, model).total_s() * k;
        let red = 1.0 - ca / xy;
        best_red = best_red.max(red);
        yz_speedups.push(yz / ca);
        println!(
            "{p:>6} {:>13.0} {:>13.0} {:>13.0} {:>9.1}% {:>9.2}x",
            xy,
            yz,
            ca,
            100.0 * red,
            yz / ca
        );
    }
    println!(
        "max total-runtime reduction vs X-Y: {:.0}%   (paper: 54% at p = 512)",
        100.0 * best_red
    );
    println!(
        "average speedup vs Y-Z: {:.2}x   (paper: 1.4x)",
        yz_speedups.iter().sum::<f64>() / yz_speedups.len() as f64
    );
}

/// §5.3: the W/S cost formulas and the lower bounds of Theorems 4.1/4.2.
fn theory(cfg: &ModelConfig) {
    header("§5.3 — theoretical communication (W) and synchronization (S) costs");
    let k = 1;
    println!("per time step (K = 1), M = {}:", cfg.m_iters);
    println!(
        "{:>6} {:>14} {:>14} {:>14} {:>8} {:>8} {:>8}",
        "p", "W_XY", "W_YZ", "W_CA", "S_XY", "S_YZ", "S_CA"
    );
    for p in PAPER_RANKS {
        let yz = agcm_bench::yz_grid(p);
        let xy = agcm_bench::xy_grid(p);
        let (py, pz) = (yz.py(), yz.pz());
        let (px, pyx) = (xy.px(), xy.py());
        println!(
            "{p:>6} {:>14.3e} {:>14.3e} {:>14.3e} {:>8.0} {:>8.0} {:>8.0}",
            analysis::w_xy(cfg, px, pyx, k),
            analysis::w_yz(cfg, py, pz, k),
            analysis::w_ca(cfg, py, pz, k),
            analysis::s_xy(cfg, k),
            analysis::s_yz(cfg, k),
            analysis::s_ca(cfg, k),
        );
    }
    println!("\nW_XY >> W_YZ > W_CA and S_XY > S_YZ > S_CA — §5.3's conclusion.");
    println!("\nlower bounds:");
    println!(
        "  Theorem 4.1 (F, per rank, one circle): {:.0} words at p_x = 16; 0 at p_x = 1 —\n\
         the Y-Z decomposition eliminates the high-order term (§4.2.1)",
        analysis::fft_lower_bound(cfg.nx, 16)
    );
    println!(
        "  Theorem 4.2 (C, total): 2(p_z-1)·n_x·n_y = {:.3e} words at p_z = 8,\n\
         attained by the ring/allgather family the runtime implements",
        analysis::reduction_lower_bound(cfg.nx, cfg.ny, 8)
    );
}

/// Tables 1–3: the declared stencil footprints.
fn print_tables() {
    header("Tables 1-3 — stencil footprints (declared = enforced by tests)");
    println!("Table 1 (adaptation):");
    for fp in tables::table1() {
        println!("  {fp}");
    }
    println!("Table 2 (advection):");
    for fp in tables::table2() {
        println!("  {fp}");
    }
    println!("Table 3 (smoothing):");
    for fp in tables::table3() {
        println!("  {fp}");
    }
    let u = tables::adaptation_union();
    println!("adaptation union: {u}");
    let (ylo, yhi) = tables::ca_halo_extent(3, agcm_mesh::Axis::Y);
    println!("CA deep halo (M = 3): y = {ylo}/{yhi}, matching Figure 4's 3M(+2) layers");
}

/// Execute small real runs and show the predictor matching them exactly.
fn validate() {
    header("validation — executing runtime vs cost-model traffic counts");
    let mut cfg = ModelConfig::test_medium();
    cfg.m_iters = 1;
    let model = CostModel::tianhe2();
    for (name, alg, pg) in [
        (
            "original Y-Z",
            AlgKind::OriginalYZ,
            ProcessGrid::yz(2, 2).unwrap(),
        ),
        (
            "original X-Y",
            AlgKind::OriginalXY,
            ProcessGrid::xy(2, 2).unwrap(),
        ),
        (
            "comm-avoiding",
            AlgKind::CommAvoiding,
            ProcessGrid::yz(2, 2).unwrap(),
        ),
    ] {
        let cfg2 = cfg.clone();
        let measured = Universe::run(4, move |comm| {
            comm.stats().set_event_logging(true); // collective_events is opt-in
            let mut step: Box<dyn FnMut(&agcm_comm::Communicator)> = match alg {
                AlgKind::CommAvoiding => {
                    let mut m = agcm_core::par::CaModel::new(&cfg2, pg, comm).unwrap();
                    let ic = init::perturbed_rest(m.geom(), 100.0, 1.0, 3);
                    m.set_state(&ic);
                    Box::new(move |c| m.step(c).unwrap())
                }
                _ => {
                    let mut m = agcm_core::par::Alg1Model::new(&cfg2, pg, comm).unwrap();
                    let ic = init::perturbed_rest(m.geom(), 100.0, 1.0, 3);
                    m.set_state(&ic);
                    Box::new(move |c| m.step(c).unwrap())
                }
            };
            step(comm); // warm-up (CA cache bootstrap)
            let s0 = comm.stats().snapshot();
            let e0 = comm.stats().collective_events().len();
            step(comm);
            let d = comm.stats().snapshot().delta(&s0);
            let ev = comm.stats().collective_events()[e0..].to_vec();
            let pure = p2p_only_delta(&d, &ev);
            (pure.p2p_sends, pure.p2p_send_elems)
        });
        let decomp = agcm_mesh::Decomposition::new(cfg.extents(), pg).expect("valid decomposition");
        let grid = cfg.grid().unwrap();
        let lats: Vec<f64> = (0..grid.ny()).map(|j| grid.latitude(j)).collect();
        let filter =
            agcm_fft::FourierFilter::new(grid.nx(), &lats, cfg.filter_cutoff_deg.to_radians());
        let flags: Vec<bool> = (0..grid.ny()).map(|j| filter.is_active(j)).collect();
        println!("{name} (4 ranks, measured vs predicted per-rank):");
        for (rank, &(msgs, elems)) in measured.iter().enumerate() {
            let rc = analysis::predict_rank(&cfg, alg, &decomp, rank, &model, &flags);
            let ok = rc.p2p_msgs == msgs && rc.p2p_elems == elems;
            println!(
                "  rank {rank}: msgs {msgs:>4} vs {:>4}, elems {elems:>7} vs {:>7}  {}",
                rc.p2p_msgs,
                rc.p2p_elems,
                if ok { "EXACT" } else { "MISMATCH" }
            );
            assert!(ok, "prediction diverged from the executing runtime");
        }
    }
    println!("every count matches: the figures above rest on the executing implementation.");
}

/// Static certification of the paper-mesh communication schedules
/// (`agcm-verify`): matched, deadlock-free, counts equal to the §5.3
/// closed forms — no threads spawned, any rank count.
fn verify() {
    header("verify — static certification of the communication schedules");
    let mut report = String::from("# Static certification report\n\n## Schedule counts\n\n");
    let certs = match agcm_verify::certify_paper_ranks() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("CERTIFICATION FAILED: {e}");
            std::process::exit(1);
        }
    };
    let head = format!(
        "{:>6} {:>14} {:>14} {:>12} {:>12} {:>12}",
        "p", "Alg1 exch/Δt", "CA exch/Δt", "Alg1 colls", "CA colls", "events"
    );
    println!("{head}");
    report.push_str(&format!("```\n{head}\n"));
    for c in &certs {
        let row = format!(
            "{:>6} {:>14} {:>14} {:>12} {:>12} {:>12}",
            c.p,
            c.alg1.exchanges,
            c.ca_ideal.exchanges,
            c.alg1.collectives,
            c.ca_ideal.collectives,
            c.alg1.actions + c.ca_ideal.actions + c.ca_grouped.actions,
        );
        println!("{row}");
        report.push_str(&row);
        report.push('\n');
    }
    report.push_str("```\n");
    println!(
        "each row: send/recv matching exact, deadlock-freedom proven by virtual\n\
         execution, counts equal to core::analysis and the §5.3 closed forms\n\
         (13 -> 2 halo exchanges per step; vertical collectives 3M -> 2M)."
    );
    // the dataflow proof: every read of every executable schedule is
    // covered by the preceding exchange's halo depth (verify::dataflow)
    report.push_str("\n## Dataflow (halo-coverage) proof\n\n");
    let fmt_df = |a: &agcm_verify::AlgCertification| match (a.dataflow_reads, a.dataflow_margin) {
        (Some(r), Some(m)) => format!("{r} reads, slack {m}"),
        (Some(r), None) => format!("{r} reads (serial)"),
        (None, _) => "n/a (idealized)".into(),
    };
    let head = format!(
        "{:>6} {:>26} {:>26} {:>26}",
        "p", "Alg1 grouped", "CA grouped", "CA ideal"
    );
    println!("{head}");
    report.push_str(&format!("```\n{head}\n"));
    for c in &certs {
        let row = format!(
            "{:>6} {:>26} {:>26} {:>26}",
            c.p,
            fmt_df(&c.alg1),
            fmt_df(&c.ca_grouped),
            fmt_df(&c.ca_ideal),
        );
        println!("{row}");
        report.push_str(&row);
        report.push('\n');
    }
    report.push_str("```\n");
    println!(
        "dataflow: every stencil read of every executable schedule is proven\n\
         covered by the preceding exchange's declared halo depth (AccessSpec\n\
         registry x verify::dataflow); slack 0 = some depth consumed exactly."
    );
    // the cross-check pins the static model to the executing runtime
    report.push_str("\n## Runtime cross-checks\n\n");
    let cfg = ModelConfig::test_medium();
    let pg = ProcessGrid::yz(2, 2).unwrap();
    for alg in [AlgKind::OriginalYZ, AlgKind::CommAvoiding] {
        match agcm_verify::cross_check(&cfg, alg, pg) {
            Ok(_) => {
                println!("runtime cross-check {alg:?} @ 4 ranks: EXACT");
                report.push_str(&format!("- runtime cross-check {alg:?} @ 4 ranks: EXACT\n"));
            }
            Err(e) => {
                eprintln!("runtime cross-check {alg:?} FAILED:\n{e}");
                std::process::exit(1);
            }
        }
    }
    // and the trace stream (agcm-obs spans) to the static schedule
    for alg in [AlgKind::OriginalYZ, AlgKind::CommAvoiding] {
        match agcm_verify::trace_cross_check(&cfg, alg, pg) {
            Ok(_) => {
                println!("trace cross-check {alg:?} @ 4 ranks: EXACT");
                report.push_str(&format!("- trace cross-check {alg:?} @ 4 ranks: EXACT\n"));
            }
            Err(e) => {
                eprintln!("trace cross-check {alg:?} FAILED:\n{e}");
                std::process::exit(1);
            }
        }
    }
    // publish the certification as a build artifact (CI uploads it)
    let out = std::path::Path::new("target/certification-report.md");
    std::fs::create_dir_all("target").expect("create target dir");
    std::fs::write(out, &report).expect("write certification report");
    println!("certification report written to {}", out.display());
}

/// Operator-level tracing of executing runs: Chrome-trace timelines (load
/// them at `ui.perfetto.dev` or `chrome://tracing`) and the §4.3.1
/// overlap-efficiency profile.  Returns each algorithm's metrics document
/// and raw span stream; [`trace_dist`] builds `BENCH_trace.json` on top.
///
/// Output directory: second CLI argument, default `target/trace`.
fn trace() -> Vec<(&'static str, String, Vec<obs::Event>)> {
    header("trace — operator spans, metrics, and overlap profile (executing runs)");
    let outdir = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "target/trace".into());
    std::fs::create_dir_all(&outdir).expect("create trace output directory");
    let mut cfg = ModelConfig::test_medium();
    cfg.m_iters = 1; // the CA deep halo fits the 2x2 blocks
    const STEPS: usize = 3;
    let mut docs: Vec<(&'static str, String, Vec<obs::Event>)> = Vec::new();
    for (name, alg) in [
        ("alg1", AlgKind::OriginalYZ),
        ("alg2", AlgKind::CommAvoiding),
    ] {
        // the tracer and registry are process-global: isolate each run
        let guard = obs::exclusive();
        obs::reset();
        obs::Registry::global().clear();
        obs::enable();
        let cfg2 = cfg.clone();
        let budgets = Universe::run(4, move |comm| {
            comm.stats().set_event_logging(true);
            let pg = ProcessGrid::yz(2, 2).unwrap();
            // per-step global mass/energy budgets ride along as gauge
            // samples on rank 0's trace timeline
            let sample = |b: &diagnostics::Budget, comm: &agcm_comm::Communicator| {
                if comm.rank() == 0 {
                    obs::record_value("physics.mass", b.mass);
                    obs::record_value("physics.energy", b.energy());
                }
            };
            match alg {
                AlgKind::CommAvoiding => {
                    let mut m = agcm_core::par::CaModel::new(&cfg2, pg, comm).unwrap();
                    let ic = init::perturbed_rest(m.geom(), 100.0, 1.0, 3);
                    m.set_state(&ic);
                    let b0 = diagnostics::global_budget(m.geom(), &m.state, comm).unwrap();
                    let mut b1 = b0;
                    for _ in 0..STEPS {
                        m.step(comm).unwrap();
                        b1 = diagnostics::global_budget(m.geom(), &m.state, comm).unwrap();
                        sample(&b1, comm);
                    }
                    (b0, b1)
                }
                _ => {
                    let mut m = agcm_core::par::Alg1Model::new(&cfg2, pg, comm).unwrap();
                    let ic = init::perturbed_rest(m.geom(), 100.0, 1.0, 3);
                    m.set_state(&ic);
                    let b0 = diagnostics::global_budget(m.geom(), &m.state, comm).unwrap();
                    let mut b1 = b0;
                    for _ in 0..STEPS {
                        m.step(comm).unwrap();
                        b1 = diagnostics::global_budget(m.geom(), &m.state, comm).unwrap();
                        sample(&b1, comm);
                    }
                    (b0, b1)
                }
            }
        });
        obs::disable();
        let events = obs::drain();
        let (b0, b1) = budgets[0];

        // physics health gauges: relative drift per step
        let reg = obs::Registry::global();
        let mass_scale = b0.mass.abs().max(1.0);
        let energy_scale = b0.energy().abs().max(1.0);
        let mass_drift = (b1.mass - b0.mass) / STEPS as f64 / mass_scale;
        let energy_drift = (b1.energy() - b0.energy()) / STEPS as f64 / energy_scale;
        reg.gauge("physics.mass_drift_per_step").set(mass_drift);
        reg.gauge("physics.energy_drift_per_step").set(energy_drift);
        reg.counter("trace.events").add(events.len() as u64);
        reg.counter("trace.steps").add(STEPS as u64);

        let report = obs::TraceReport::from_events(&events);
        let snap = reg.snapshot();

        // Chrome-trace timeline, self-validated: every operator the
        // algorithm runs must appear (Alg 1 smooths unsplit, so no S2)
        let chrome = obs::chrome_trace_json(&events);
        let phases: &[obs::Phase] = match alg {
            AlgKind::CommAvoiding => &[
                obs::Phase::A,
                obs::Phase::C,
                obs::Phase::F,
                obs::Phase::L,
                obs::Phase::S1,
                obs::Phase::S2,
            ],
            _ => &[
                obs::Phase::A,
                obs::Phase::C,
                obs::Phase::F,
                obs::Phase::L,
                obs::Phase::S1,
            ],
        };
        if let Err(e) = obs::validate_chrome_trace(&chrome, phases, 1) {
            eprintln!("{name}: invalid Chrome trace: {e}");
            std::process::exit(1);
        }
        let path = format!("{outdir}/trace_{name}.json");
        std::fs::write(&path, &chrome).expect("write Chrome trace");

        let doc = obs::metrics_json(name, &report, &snap);
        obs::validate_json(&doc).expect("metrics JSON validates");
        docs.push((name, doc, events));
        drop(guard);

        println!(
            "{name}: {} events from {} ranks over {STEPS} steps -> {path}",
            report.events, report.ranks
        );
        println!(
            "  {:<4} {:>14} {:>8} {:>11}",
            "op", "wall [ms]", "spans", "imbalance"
        );
        for (label, ns) in &report.op_wall_ns {
            let imb = report
                .imbalance
                .get(label)
                .map(|i| i.imbalance)
                .unwrap_or(0.0);
            println!(
                "  {label:<4} {:>14.3} {:>8} {:>10.2}x",
                *ns as f64 / 1e6,
                report.op_count[label],
                imb
            );
        }
        println!(
            "  overlap efficiency (mean over steps): {:.1}%   (compute hidden / window)",
            100.0 * report.mean_overlap_efficiency()
        );
        println!(
            "  mass drift/step: {mass_drift:+.3e} (rel), energy drift/step: {energy_drift:+.3e} (rel)"
        );
    }

    println!("load the timelines at ui.perfetto.dev (run `trace-dist` for BENCH_trace.json)");
    docs
}

/// `trace-dist` — the distributed-observability dump: runs the traced
/// worlds of [`trace`], round-trips every rank's span stream through the
/// cross-rank telemetry codec (`obs::dist`) and merges the streams, joins
/// the measured step against `verify`'s static `ScheduleGraph` for a
/// per-step critical path, and fits the α–β(–γ) cost model from the
/// measured exchange spans.  The result is `BENCH_trace.json` schema v2:
/// all v1 in-process fields verbatim (so the perf trajectory stays
/// comparable) plus per-rank measured-step imbalance, the critical-path
/// table, and the fit residuals.  Exits non-zero on any inconsistency.
fn trace_dist() {
    use agcm_comm::{fit_alpha_beta, fit_gamma};
    use agcm_core::analysis::{predict_step, CaMode};
    use agcm_obs::dist;
    use agcm_verify::{critpath, ScheduleGraph};

    let docs = trace();
    header("trace-dist — merged streams, critical path, fitted cost model");
    let mut cfg = ModelConfig::test_medium();
    cfg.m_iters = 1; // must match the worlds trace() ran
    let pg = ProcessGrid::yz(2, 2).unwrap();
    let p = 4usize;
    // the models stamp spans with the pre-increment step counter: the
    // warm-up records step 0 and the first steady-state step — the one the
    // static schedule describes — records step 1
    const MEASURED_STEP: u64 = 1;
    let jn = |x: f64| {
        if x.is_finite() {
            format!("{x:e}")
        } else {
            "null".to_string()
        }
    };

    let mut sections: Vec<String> = Vec::new();
    for (name, doc, events) in &docs {
        let alg = match *name {
            "alg1" => AlgKind::OriginalYZ,
            _ => AlgKind::CommAvoiding,
        };

        // 1. ship each rank's stream through the telemetry codec exactly
        // as `agcm-run` does (string-table encode → f64 wire words →
        // decode) and merge; in-process clocks share a timebase, so the
        // per-rank offsets are zero.
        let mut streams: Vec<(i64, Vec<obs::Event>)> = Vec::new();
        for rank in 0..p {
            let mine: Vec<obs::Event> = events.iter().filter(|e| e.rank == rank).cloned().collect();
            let bytes = dist::encode_events(&mine);
            let words = dist::bytes_to_words(&bytes);
            let back = dist::words_to_bytes(&words).expect("wire words round-trip");
            let decoded = dist::decode_events(&back).expect("span stream decodes");
            if decoded != mine {
                eprintln!("{name}: span codec round-trip diverged on rank {rank}");
                std::process::exit(1);
            }
            streams.push((0, decoded));
        }
        let merged = dist::merge_events(&streams);
        assert_eq!(merged.len(), events.len(), "merge must keep every span");

        // 2. critical path of the measured step against the static schedule
        let graph = ScheduleGraph::extract(&cfg, alg, CaMode::Grouped, pg)
            .expect("static schedule extracts");
        let measured: Vec<obs::Event> = merged
            .iter()
            .filter(|e| e.step == MEASURED_STEP)
            .cloned()
            .collect();
        let rep = critpath::analyze(&measured, &graph);
        if !rep.is_consistent() {
            eprintln!(
                "{name}: merged trace inconsistent with the static schedule:\n  {}",
                rep.errors.join("\n  ")
            );
            std::process::exit(1);
        }
        let Some(step) = rep.steps.first() else {
            eprintln!("{name}: no complete measured step in the merged trace");
            std::process::exit(1);
        };

        // per-rank wall time of the measured step (operator spans only):
        // the distributed complement of the per-phase load_imbalance map
        let mut rank_wall = vec![0u64; p];
        for e in &measured {
            if e.kind == obs::SpanKind::Op {
                rank_wall[e.rank] += e.dur_ns();
            }
        }
        let mean_wall = (rank_wall.iter().sum::<u64>() as f64 / p as f64).max(1.0);
        let imb = rank_wall.iter().copied().max().unwrap_or(0) as f64 / mean_wall;

        // 3. α–β fit over the measured exchange spans; γ from the critical
        // rank's compute time against the schedule's point updates
        let fit = match fit_alpha_beta(&rep.samples) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("{name}: cost-model fit failed: {e}");
                std::process::exit(1);
            }
        };
        let probe = CostModel {
            alpha: 0.0,
            beta: 0.0,
            gamma: 1.0,
            sync: 0.0,
            name: "probe",
        };
        let updates = predict_step(&cfg, alg, pg, &probe).compute_s;
        let gamma = fit_gamma(step.breakdown.compute_ns as f64 * 1e-9, updates);

        let b = &step.breakdown;
        let blocking: Vec<String> = step
            .blocking
            .iter()
            .take(5)
            .map(|a| {
                format!(
                    "      {{\"rank\": {}, \"op\": {}, \"label\": \"{}\", \"name\": \"{}\", \
                     \"dur_ns\": {}, \"bytes\": {}}}",
                    a.rank, a.op, a.op_label, a.name, a.dur_ns, a.bytes
                )
            })
            .collect();
        let residuals: Vec<String> = fit
            .residuals
            .iter()
            .map(|r| {
                format!(
                    "      {{\"op\": {}, \"name\": \"{}\", \"msgs\": {}, \"bytes\": {}, \
                     \"measured_s\": {}, \"predicted_s\": {}, \"rel_err\": {}}}",
                    r.op,
                    r.name,
                    r.msgs,
                    r.bytes,
                    jn(r.measured_s),
                    jn(r.predicted_s),
                    jn(r.rel_err())
                )
            })
            .collect();
        let walls: Vec<String> = rank_wall.iter().map(|w| w.to_string()).collect();

        // splice the v2 fields into the v1 metrics object: drop the doc's
        // closing brace and append the new keys
        let base = doc
            .trim_end()
            .strip_suffix('}')
            .expect("metrics doc is a JSON object");
        let section = format!(
            "{base},\n  \"measured_step_rank_wall_ns\": [{}],\n  \"measured_step_imbalance\": {},\n  \
             \"critical_path\": {{\"step\": {}, \"makespan_ns\": {}, \"critical_rank\": {}, \
             \"critical_wall_ns\": {}, \"compute_ns\": {}, \"pack_ns\": {}, \"wire_wait_ns\": {}, \
             \"collective_ns\": {},\n    \"blocking\": [\n{}\n    ]}},\n  \
             \"fit\": {{\"terms\": \"{}\", \"alpha_s\": {}, \"beta_s_per_byte\": {}, \"sync_s\": {}, \
             \"gamma_s\": {}, \"rel_rmse\": {}, \"max_rel_err\": {}, \"samples\": {},\n    \
             \"residuals\": [\n{}\n    ]}}\n}}",
            walls.join(", "),
            jn(imb),
            step.step,
            step.makespan_ns,
            step.critical_rank,
            step.critical_wall_ns,
            b.compute_ns,
            b.pack_ns,
            b.wire_wait_ns,
            b.collective_ns,
            blocking.join(",\n"),
            fit.terms.label(),
            jn(fit.alpha),
            jn(fit.beta),
            jn(fit.sync),
            jn(gamma),
            jn(fit.rel_rmse()),
            jn(fit.max_rel_err()),
            fit.residuals.len(),
            residuals.join(",\n"),
        );
        sections.push(format!("\"{name}\": {section}"));

        let pct = |ns: u64| 100.0 * ns as f64 / step.critical_wall_ns.max(1) as f64;
        let block = step
            .blocking
            .first()
            .map(|a| format!("{} ({})", a.op_label, a.name))
            .unwrap_or_else(|| "none".to_string());
        println!(
            "{name}: codec round-trip OK ({} spans, {p} streams merged); step {}: makespan \
             {:.1} µs, critical rank {} (compute {:.0}%, pack {:.0}%, wire-wait {:.0}%, \
             collective {:.0}%, longest block: {block}), rank imbalance {:.2}x",
            merged.len(),
            step.step,
            step.makespan_ns as f64 / 1e3,
            step.critical_rank,
            pct(b.compute_ns),
            pct(b.pack_ns),
            pct(b.wire_wait_ns),
            pct(b.collective_ns),
            imb,
        );
        println!(
            "  fit[{}] α={:.3e} s β={:.3e} s/B sync={:.3e} s γ={:.3e} s/pt \
             rel_rmse={:.3} over {} samples",
            fit.terms.label(),
            fit.alpha,
            fit.beta,
            fit.sync,
            gamma,
            fit.rel_rmse(),
            fit.residuals.len(),
        );
    }

    // one combined BENCH-style dump in the working directory (schema v2)
    let mut combined = String::from("{\n\"schema_version\": 2,\n");
    combined.push_str(&sections.join(",\n"));
    combined.push_str("\n}\n");
    obs::validate_json(&combined).expect("combined metrics JSON validates");
    std::fs::write("BENCH_trace.json", &combined).expect("write BENCH_trace.json");
    println!("metrics + critical path + fit residuals -> BENCH_trace.json (schema v2, validated)");
}

/// Checkpoint/restart round-trip smoke (ISSUE 3 satellite): run the CA
/// model, write a versioned binary checkpoint to disk, read it back into a
/// *fresh* model, continue both, and require **bitwise** equality.  Exits
/// non-zero on any divergence so CI's chaos job can gate on it.
fn restart() {
    use agcm_core::par::CaModel;
    use agcm_core::resilience::{read_checkpoint, write_checkpoint, Resilient};

    header("restart — checkpoint round-trip must be bitwise");
    let cfg = {
        let mut c = ModelConfig::test_medium();
        c.ny = 24;
        c
    };
    let dir = std::env::temp_dir();
    let path = dir.join(format!(
        "agcm_restart_smoke_{}.agcmckpt",
        std::process::id()
    ));
    let cfg2 = cfg.clone();
    let path2 = path.clone();
    let ok = Universe::run(1, move |comm| {
        let pg = ProcessGrid::serial();
        let mut m = CaModel::new(&cfg2, pg, comm).expect("CA model");
        let ic = init::perturbed_rest(m.geom(), 200.0, 1.0, 42);
        m.set_state(&ic);
        m.run(comm, 3).expect("first leg");
        let ck = Resilient::capture(&m);
        write_checkpoint(&path2, &ck).expect("write checkpoint");
        let back = read_checkpoint(&path2).expect("read checkpoint");
        assert_eq!(back, ck, "disk round-trip must be bitwise");
        // continue the original
        m.run(comm, 2).expect("second leg");
        m.finish(comm).expect("finish");
        let gold = m.state.clone();
        // restart a fresh model from the file and replay the second leg
        let mut r = CaModel::new(&cfg2, pg, comm).expect("CA model (restart)");
        Resilient::restore(&mut r, &back);
        r.run(comm, 2).expect("restarted leg");
        r.finish(comm).expect("finish (restart)");
        let diff = r.state.max_abs_diff(&gold);
        println!("  5 steps direct vs 3 + checkpoint + 2 restarted: max |diff| = {diff:e}");
        diff == 0.0
    })
    .pop()
    .unwrap();
    std::fs::remove_file(&path).ok();
    if ok {
        println!("restart round-trip: PASS (bitwise)");
    } else {
        eprintln!("restart round-trip: FAIL — checkpoint restore is not bitwise");
        std::process::exit(1);
    }
}

/// `perf` — kernel micro-benchmark: row-sliced operators vs their scalar
/// golden references, emitted as `BENCH_kernels.json` (ns/point + speedup).
///
/// With a `baseline` argument the run becomes a CI gate: each kernel's
/// row-vs-scalar *speedup ratio* (machine-portable, unlike raw ns/point)
/// is compared against the baseline document and the process exits nonzero
/// if any kernel regressed by more than 30%.
fn perf(baseline: Option<String>) {
    use agcm_bench::kernels::{measure_kernels, parse_speedups, to_json};
    use agcm_core::pool;

    header("Kernel micro-benchmark — row-sliced vs scalar reference");
    let cfg = ModelConfig::test_medium();
    let (warmup, iters) = (3, 9);
    // one worker: the CI gate must not confound banding overhead with
    // kernel-level vectorization wins
    let perfs = pool::with_workers(1, || measure_kernels(&cfg, warmup, iters));
    println!(
        "{:<12} {:>10} {:>14} {:>17} {:>9}",
        "kernel", "points", "row ns/pt", "scalar ns/pt", "speedup"
    );
    for p in &perfs {
        println!(
            "{:<12} {:>10} {:>14.3} {:>17.3} {:>8.2}x",
            p.name, p.points, p.row_ns_per_point, p.scalar_ns_per_point, p.speedup
        );
    }

    let doc = to_json("test_medium", warmup, iters, &perfs);
    if let Err(e) = obs::validate_json(&doc) {
        eprintln!("BENCH_kernels.json failed RFC 8259 validation: {e}");
        std::process::exit(1);
    }

    if let Some(base_path) = baseline {
        let base = match std::fs::read_to_string(&base_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read baseline {base_path}: {e}");
                std::process::exit(1);
            }
        };
        let want = parse_speedups(&base);
        let got = parse_speedups(&doc);
        let mut failed = false;
        for (name, base_sp) in &want {
            let Some((_, new_sp)) = got.iter().find(|(n, _)| n == name) else {
                eprintln!("perf gate: kernel '{name}' missing from new measurement");
                failed = true;
                continue;
            };
            let ratio = new_sp / base_sp;
            let verdict = if ratio < 0.70 { "REGRESSED" } else { "ok" };
            println!(
                "  gate {name:<12} baseline {base_sp:>6.2}x  now {new_sp:>6.2}x  ({:.0}% of baseline) {verdict}",
                100.0 * ratio
            );
            if ratio < 0.70 {
                failed = true;
            }
        }
        if failed {
            eprintln!("perf gate: at least one kernel regressed >30% vs {base_path}");
            std::process::exit(1);
        }
        println!("perf gate: PASS (no kernel speedup below 70% of baseline)");
    }

    std::fs::write("BENCH_kernels.json", &doc).expect("write BENCH_kernels.json");
    println!("wrote BENCH_kernels.json ({} kernels)", perfs.len());
}
