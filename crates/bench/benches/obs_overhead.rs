//! Overhead of the *disabled* tracer on a dynamical-core step.
//!
//! The instrumentation contract (`agcm-obs`): with tracing compiled in but
//! disabled, every span site costs one relaxed atomic load and a branch
//! (plus a thread-local `Cell` store for phase-tagged sites).  This bench
//! measures that per-site cost directly, counts how many sites one
//! steady-state step of the communication-avoiding model actually hits
//! (by tracing one step), and asserts the product is **< 2%** of the
//! measured step wall time — the acceptance bound for always-on
//! instrumentation in the hot loop.

use agcm_bench::timing::{bench, group};
use agcm_comm::Universe;
use agcm_core::init;
use agcm_core::par::CaModel;
use agcm_core::ModelConfig;
use agcm_mesh::ProcessGrid;
use agcm_obs as obs;
use std::time::Instant;

fn bench_config() -> ModelConfig {
    let mut cfg = ModelConfig::test_medium();
    cfg.ny = 48; // 4 y-blocks hold the full CA halo at M = 3
    cfg
}

/// Nanoseconds per call of a disabled span site.
fn disabled_site_cost_ns() -> f64 {
    const N: u64 = 2_000_000;
    // plain span: one relaxed load + branch
    let t0 = Instant::now();
    for _ in 0..N {
        let s = obs::span(obs::SpanKind::Op, "bench");
        std::hint::black_box(&s);
    }
    let plain = t0.elapsed().as_nanos() as f64 / N as f64;
    // phase-tagged span: adds two thread-local Cell stores
    let t0 = Instant::now();
    for _ in 0..N {
        let s = obs::span_phase(obs::SpanKind::Op, obs::Phase::A, "bench");
        std::hint::black_box(&s);
    }
    let phased = t0.elapsed().as_nanos() as f64 / N as f64;
    println!("disabled span site: plain {plain:.2} ns, phase-tagged {phased:.2} ns");
    plain.max(phased)
}

fn main() {
    let _guard = obs::exclusive();
    obs::disable();
    group("obs_overhead");

    let per_site_ns = disabled_site_cost_ns();

    // count the span sites one steady-state step hits, by tracing one
    let cfg = bench_config();
    obs::reset();
    obs::enable();
    let cfg1 = cfg.clone();
    Universe::run(4, move |comm| {
        let mut m = CaModel::new(&cfg1, ProcessGrid::yz(4, 1).unwrap(), comm).unwrap();
        let ic = init::perturbed_rest(m.geom(), 150.0, 1.0, 5);
        m.set_state(&ic);
        m.run(comm, 2).unwrap();
    });
    obs::disable();
    let events = obs::drain();
    let sites_per_step = events.iter().filter(|e| e.step == 1).count();
    println!("span sites hit per steady-state step (all 4 ranks): {sites_per_step}");

    // wall time of the same step with tracing disabled
    let steps = 5usize;
    let cfg2 = cfg.clone();
    let median = bench("alg2_ca_5steps_tracing_disabled", 5, move || {
        let cfg = cfg2.clone();
        Universe::run(4, move |comm| {
            let mut m = CaModel::new(&cfg, ProcessGrid::yz(4, 1).unwrap(), comm).unwrap();
            let ic = init::perturbed_rest(m.geom(), 150.0, 1.0, 5);
            m.set_state(&ic);
            m.run(comm, steps).unwrap();
            m.state.max_abs()
        })
    });
    let step_ns = median.as_nanos() as f64 / steps as f64;

    let overhead = sites_per_step as f64 * per_site_ns / step_ns;
    println!(
        "disabled-tracing overhead: {sites_per_step} sites x {per_site_ns:.2} ns \
         = {:.1} us per {:.1} us step = {:.3}%",
        sites_per_step as f64 * per_site_ns / 1e3,
        step_ns / 1e3,
        100.0 * overhead
    );
    assert!(
        overhead < 0.02,
        "disabled tracing costs {:.3}% of a step, bound is 2%",
        100.0 * overhead
    );
    println!("PASS: < 2% of dycore step time");
}
