//! Overhead of the resilience layer when **no faults fire** (ISSUE 3
//! satellite): checkpoint ring + checksum framing together must cost
//! < 2% of a communication-avoiding step.
//!
//! Three configurations of the same 4-rank CA run are timed:
//!
//! * baseline — plain `CaModel::run`, no framing, no checkpoints,
//! * framed — checksum-framed exchanges with the default retry policy
//!   (the frame is 3 extra f64 per message + one FNV-1a pass over each
//!   payload on both sides),
//! * resilient — framed exchanges *and* the `ResilientRunner` loop:
//!   a checkpoint every other step plus one 3-element control allreduce
//!   per step (the blow-up-guard consensus).
//!
//! The acceptance bound covers the full fault-free resilience stack
//! (resilient vs baseline).

use agcm_bench::timing::{bench, group};
use agcm_comm::Universe;
use agcm_core::init;
use agcm_core::par::{CaModel, RetryPolicy};
use agcm_core::resilience::{ResilienceConfig, ResilientRunner};
use agcm_core::ModelConfig;
use agcm_mesh::ProcessGrid;
use std::time::Duration;

const RANKS: usize = 4;
const STEPS: usize = 6;
const ITERS: usize = 7;

fn bench_config() -> ModelConfig {
    let mut cfg = ModelConfig::test_medium();
    cfg.ny = 48; // 4 y-blocks hold the full CA halo at M = 3
    cfg
}

fn run_baseline(cfg: &ModelConfig) -> f64 {
    let cfg = cfg.clone();
    Universe::run(RANKS, move |comm| {
        let mut m = CaModel::new(&cfg, ProcessGrid::yz(RANKS, 1).unwrap(), comm).unwrap();
        let ic = init::perturbed_rest(m.geom(), 150.0, 1.0, 5);
        m.set_state(&ic);
        m.run(comm, STEPS).unwrap();
        m.state.max_abs()
    })
    .pop()
    .unwrap()
}

fn run_framed(cfg: &ModelConfig) -> f64 {
    let cfg = cfg.clone();
    Universe::run(RANKS, move |comm| {
        let mut m = CaModel::new(&cfg, ProcessGrid::yz(RANKS, 1).unwrap(), comm).unwrap();
        m.set_framed(true);
        m.set_retry(RetryPolicy::default());
        let ic = init::perturbed_rest(m.geom(), 150.0, 1.0, 5);
        m.set_state(&ic);
        m.run(comm, STEPS).unwrap();
        m.state.max_abs()
    })
    .pop()
    .unwrap()
}

fn run_resilient(cfg: &ModelConfig) -> f64 {
    let cfg = cfg.clone();
    Universe::run(RANKS, move |comm| {
        let mut m = CaModel::new(&cfg, ProcessGrid::yz(RANKS, 1).unwrap(), comm).unwrap();
        m.set_framed(true);
        m.set_retry(RetryPolicy::default());
        let ic = init::perturbed_rest(m.geom(), 150.0, 1.0, 5);
        m.set_state(&ic);
        let mut runner = ResilientRunner::new(
            comm,
            ResilienceConfig {
                checkpoint_interval: 2,
                ring_capacity: 2,
                max_rollbacks: 4,
                max_abs_limit: 1e6,
                checkpoint_dir: None,
            },
        )
        .unwrap();
        let report = runner.run(&mut m, comm, STEPS as u64).unwrap();
        assert_eq!(report.rollbacks, 0, "fault-free run must not roll back");
        m.state.max_abs()
    })
    .pop()
    .unwrap()
}

fn main() {
    group("resilience_overhead");
    let cfg = bench_config();

    let base = bench("alg2_ca_6steps_baseline", ITERS, {
        let cfg = cfg.clone();
        move || run_baseline(&cfg)
    });
    let framed = bench("alg2_ca_6steps_framed", ITERS, {
        let cfg = cfg.clone();
        move || run_framed(&cfg)
    });
    let resilient = bench("alg2_ca_6steps_ckpt_ring+framed", ITERS, {
        let cfg = cfg.clone();
        move || run_resilient(&cfg)
    });

    let pct = |d: Duration| 100.0 * (d.as_secs_f64() / base.as_secs_f64() - 1.0);
    println!(
        "framing overhead: {:+.2}%   full resilience stack: {:+.2}%   (bound: < 2%)",
        pct(framed),
        pct(resilient)
    );
    // thread spawn/join noise dominates at this scale; a negative delta
    // just means the run landed inside the noise floor
    assert!(
        pct(resilient) < 2.0,
        "fault-free resilience stack costs {:+.2}% of a CA step, bound is 2%",
        pct(resilient)
    );
    println!("PASS: checkpoint ring + checksum framing < 2% of a CA step");
}
