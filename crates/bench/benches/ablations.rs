//! Ablations of the design choices `DESIGN.md` §6 calls out, measured on
//! the executing implementation:
//!
//! * the approximate nonlinear iteration (§4.2.2) — exact vs approximate
//!   serial step (the compute side; the collective saving is counted by
//!   `tests/counting.rs` and priced by the `figures` binary),
//! * the smoothing operator splitting (§4.3.2) — one full sweep vs the
//!   `S̃₂∘S̃₁` staged form,
//! * operator kernels in isolation (adaptation vs advection sweeps).

use agcm_core::boundary;
use agcm_core::diag::Diag;
use agcm_core::geometry::LocalGeometry;
use agcm_core::init;
use agcm_core::serial::{Iteration, SerialModel};
use agcm_core::smoothing::{smooth_full, smooth_rows, RowMask};
use agcm_core::state::State;
use agcm_core::stdatm::StandardAtmosphere;
use agcm_core::vertical::{apply_c, ZContext};
use agcm_core::ModelConfig;
use agcm_mesh::{Decomposition, HaloWidths, ProcessGrid};
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;

fn setup() -> (LocalGeometry, StandardAtmosphere, State, Diag) {
    let cfg = ModelConfig::test_medium();
    let grid = Arc::new(cfg.grid().unwrap());
    let d = Decomposition::new(cfg.extents(), ProcessGrid::serial()).unwrap();
    let geom = LocalGeometry::new(&cfg, Arc::clone(&grid), &d, 0, HaloWidths::uniform(3));
    let sa = StandardAtmosphere::new(&grid);
    let mut st = init::perturbed_rest(&geom, 200.0, 2.0, 9);
    boundary::enforce_pole_v(&mut st, &geom);
    boundary::fill_boundaries(&mut st, &geom);
    let diag = Diag::new(&geom);
    (geom, sa, st, diag)
}

fn approx_iteration(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_approx_c");
    let cfg = ModelConfig::test_medium();
    for (name, variant) in [
        ("exact_3C_per_iter", Iteration::Exact),
        ("approx_2C_per_iter", Iteration::Approximate),
    ] {
        group.bench_function(name, |b| {
            let mut model = SerialModel::new(&cfg, variant).unwrap();
            let ic = init::perturbed_rest(model.geom(), 150.0, 1.0, 5);
            model.set_state(&ic);
            b.iter(|| {
                model.step();
                std::hint::black_box(model.state.phi.get(0, 0, 0))
            });
        });
    }
    group.finish();
}

fn smoothing_split(c: &mut Criterion) {
    let (geom, _sa, st, _diag) = setup();
    let region = geom.interior();
    let mut group = c.benchmark_group("ablation_smoothing_fusion");
    group.bench_function("full_sweep", |b| {
        let mut out = State::like(&st);
        b.iter(|| {
            smooth_full(&geom, 0.1, &st, &mut out, region);
            std::hint::black_box(out.phi.get(0, 0, 0))
        });
    });
    group.bench_function("former_plus_later", |b| {
        let mut out = State::like(&st);
        b.iter(|| {
            smooth_rows(&geom, 0.1, &st, &mut out, region, RowMask::L, false);
            smooth_rows(&geom, 0.1, &st, &mut out, region, RowMask::L_PRIME, true);
            std::hint::black_box(out.phi.get(0, 0, 0))
        });
    });
    group.finish();
}

fn operator_kernels(c: &mut Criterion) {
    let (geom, sa, st, mut diag) = setup();
    let region = geom.interior();
    diag.update_surface(&geom, &sa, &st, region.y0 - 1, region.y1 + 1);
    apply_c(&geom, &sa, &st, &mut diag, region, &ZContext::Serial, true).unwrap();
    let mut group = c.benchmark_group("operator_kernels");
    group.bench_function("adaptation_tendency", |b| {
        let mut tend = State::like(&st);
        b.iter(|| {
            agcm_core::adaptation::adaptation_tendency(&geom, &st, &diag, &mut tend, region);
            std::hint::black_box(tend.u.get(0, 0, 0))
        });
    });
    group.bench_function("advection_tendency", |b| {
        let mut tend = State::like(&st);
        b.iter(|| {
            agcm_core::advection::advection_tendency(&geom, &st, &diag, &mut tend, region);
            std::hint::black_box(tend.u.get(0, 0, 0))
        });
    });
    group.bench_function("operator_c", |b| {
        b.iter(|| {
            apply_c(&geom, &sa, &st, &mut diag, region, &ZContext::Serial, true).unwrap();
            std::hint::black_box(diag.gw.get(0, 0, 0))
        });
    });
    group.finish();
}

criterion_group!(benches, approx_iteration, smoothing_split, operator_kernels);
criterion_main!(benches);
