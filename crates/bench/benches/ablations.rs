//! Ablations of the design choices `DESIGN.md` §12 calls out, measured on
//! the executing implementation:
//!
//! * the approximate nonlinear iteration (§4.2.2) — exact vs approximate
//!   serial step (the compute side; the collective saving is counted by
//!   `tests/counting.rs` and priced by the `figures` binary),
//! * the smoothing operator splitting (§4.3.2) — one full sweep vs the
//!   `S̃₂∘S̃₁` staged form,
//! * operator kernels in isolation (adaptation vs advection sweeps).

use agcm_bench::timing::{bench, group};
use agcm_core::boundary;
use agcm_core::diag::Diag;
use agcm_core::geometry::LocalGeometry;
use agcm_core::init;
use agcm_core::serial::{Iteration, SerialModel};
use agcm_core::smoothing::{smooth_full, smooth_rows, RowMask};
use agcm_core::state::State;
use agcm_core::stdatm::StandardAtmosphere;
use agcm_core::vertical::{apply_c, ZContext};
use agcm_core::ModelConfig;
use agcm_mesh::{Decomposition, HaloWidths, ProcessGrid};
use std::sync::Arc;

fn setup() -> (LocalGeometry, StandardAtmosphere, State, Diag) {
    let cfg = ModelConfig::test_medium();
    let grid = Arc::new(cfg.grid().unwrap());
    let d = Decomposition::new(cfg.extents(), ProcessGrid::serial()).unwrap();
    let geom = LocalGeometry::new(&cfg, Arc::clone(&grid), &d, 0, HaloWidths::uniform(3));
    let sa = StandardAtmosphere::new(&grid);
    let mut st = init::perturbed_rest(&geom, 200.0, 2.0, 9);
    boundary::enforce_pole_v(&mut st, &geom);
    boundary::fill_boundaries(&mut st, &geom);
    let diag = Diag::new(&geom);
    (geom, sa, st, diag)
}

fn approx_iteration() {
    group("ablation_approx_c");
    let cfg = ModelConfig::test_medium();
    for (name, variant) in [
        ("exact_3C_per_iter", Iteration::Exact),
        ("approx_2C_per_iter", Iteration::Approximate),
    ] {
        let mut model = SerialModel::new(&cfg, variant).unwrap();
        let ic = init::perturbed_rest(model.geom(), 150.0, 1.0, 5);
        model.set_state(&ic);
        bench(name, 10, || {
            model.step();
            model.state.phi.get(0, 0, 0)
        });
    }
}

fn smoothing_split() {
    let (geom, _sa, st, _diag) = setup();
    let region = geom.interior();
    group("ablation_smoothing_fusion");
    let mut out = State::like(&st);
    bench("full_sweep", 20, || {
        smooth_full(&geom, 0.1, &st, &mut out, region);
        out.phi.get(0, 0, 0)
    });
    let mut out = State::like(&st);
    bench("former_plus_later", 20, || {
        smooth_rows(&geom, 0.1, &st, &mut out, region, RowMask::L, false);
        smooth_rows(&geom, 0.1, &st, &mut out, region, RowMask::L_PRIME, true);
        out.phi.get(0, 0, 0)
    });
}

fn operator_kernels() {
    let (geom, sa, st, mut diag) = setup();
    let region = geom.interior();
    diag.update_surface(&geom, &sa, &st, region.y0 - 1, region.y1 + 1);
    apply_c(&geom, &sa, &st, &mut diag, region, &ZContext::Serial, true).unwrap();
    group("operator_kernels");
    let mut tend = State::like(&st);
    bench("adaptation_tendency", 20, || {
        agcm_core::adaptation::adaptation_tendency(&geom, &st, &diag, &mut tend, region);
        tend.u.get(0, 0, 0)
    });
    let mut tend = State::like(&st);
    bench("advection_tendency", 20, || {
        agcm_core::advection::advection_tendency(&geom, &st, &diag, &mut tend, region);
        tend.u.get(0, 0, 0)
    });
    bench("operator_c", 20, || {
        apply_c(&geom, &sa, &st, &mut diag, region, &ZContext::Serial, true).unwrap();
        diag.gw.get(0, 0, 0)
    });
}

fn main() {
    approx_iteration();
    smoothing_split();
    operator_kernels();
}
