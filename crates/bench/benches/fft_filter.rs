//! FFT and polar-filter kernels — the compute side of the operator `F̃`
//! whose *communication* the Y-Z decomposition eliminates (§4.2.1).

use agcm_fft::{fft, ifft, irfft, rfft, Complex, FourierFilter};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn latitudes(ny: usize) -> Vec<f64> {
    (0..ny)
        .map(|j| std::f64::consts::FRAC_PI_2 - (j as f64 + 0.5) * std::f64::consts::PI / ny as f64)
        .collect()
}

fn fft_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft_forward");
    for n in [180usize, 360, 720, 1440] {
        group.throughput(Throughput::Elements(n as u64));
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.1).sin(), (i as f64 * 0.2).cos()))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &x, |b, x| {
            b.iter(|| std::hint::black_box(fft(x)));
        });
    }
    group.finish();
}

fn fft_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft_roundtrip");
    let n = 720;
    let x: Vec<Complex> = (0..n).map(|i| Complex::new((i as f64 * 0.3).sin(), 0.0)).collect();
    group.bench_function("complex_720", |b| {
        b.iter(|| std::hint::black_box(ifft(&fft(&x))));
    });
    let xr: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
    group.bench_function("real_720", |b| {
        b.iter(|| {
            let spec = rfft(&xr);
            std::hint::black_box(irfft(&spec, n))
        });
    });
    group.finish();
}

fn filter_rows(c: &mut Criterion) {
    let mut group = c.benchmark_group("polar_filter");
    let nx = 720;
    let lats = latitudes(360);
    let filter = FourierFilter::with_default_cutoff(nx, &lats);
    let row: Vec<f64> = (0..nx).map(|i| ((i * 7) % 13) as f64).collect();
    // a strongly damped polar row and an untouched equatorial one
    group.bench_function("polar_row", |b| {
        let mut r = row.clone();
        b.iter(|| {
            r.copy_from_slice(&row);
            filter.apply_row(0, &mut r);
            std::hint::black_box(r[0])
        });
    });
    group.bench_function("equatorial_row_noop", |b| {
        let mut r = row.clone();
        b.iter(|| {
            filter.apply_row(180, &mut r);
            std::hint::black_box(r[0])
        });
    });
    group.finish();
}

criterion_group!(benches, fft_sizes, fft_roundtrip, filter_rows);
criterion_main!(benches);
