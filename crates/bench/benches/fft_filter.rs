//! FFT and polar-filter kernels — the compute side of the operator `F̃`
//! whose *communication* the Y-Z decomposition eliminates (§4.2.1).

use agcm_bench::timing::{bench, group};
use agcm_fft::{fft, ifft, irfft, rfft, Complex, FourierFilter};

fn latitudes(ny: usize) -> Vec<f64> {
    (0..ny)
        .map(|j| std::f64::consts::FRAC_PI_2 - (j as f64 + 0.5) * std::f64::consts::PI / ny as f64)
        .collect()
}

fn fft_sizes() {
    group("fft_forward");
    for n in [180usize, 360, 720, 1440] {
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.1).sin(), (i as f64 * 0.2).cos()))
            .collect();
        bench(&format!("n={n}"), 50, || fft(&x));
    }
}

fn fft_roundtrip() {
    group("fft_roundtrip");
    let n = 720;
    let x: Vec<Complex> = (0..n)
        .map(|i| Complex::new((i as f64 * 0.3).sin(), 0.0))
        .collect();
    bench("complex_720", 50, || ifft(&fft(&x)));
    let xr: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
    bench("real_720", 50, || {
        let spec = rfft(&xr);
        irfft(&spec, n)
    });
}

fn filter_rows() {
    group("polar_filter");
    let nx = 720;
    let lats = latitudes(360);
    let filter = FourierFilter::with_default_cutoff(nx, &lats);
    let row: Vec<f64> = (0..nx).map(|i| ((i * 7) % 13) as f64).collect();
    // a strongly damped polar row and an untouched equatorial one
    let mut r = row.clone();
    bench("polar_row", 100, || {
        r.copy_from_slice(&row);
        filter.apply_row(0, &mut r);
        r[0]
    });
    let mut r = row.clone();
    bench("equatorial_row_noop", 100, || {
        filter.apply_row(180, &mut r);
        r[0]
    });
}

fn main() {
    fft_sizes();
    fft_roundtrip();
    filter_rows();
}
