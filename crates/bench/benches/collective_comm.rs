//! Collective primitives of the runtime — the executable analogue of
//! Figure 6 plus the ring-vs-recursive-doubling ablation (`DESIGN.md` §12):
//! the paper's Theorem 4.2 cites the ring family as bandwidth-optimal for
//! the long vectors the summation operator `C` reduces.

use agcm_bench::timing::{bench, group};
use agcm_comm::{AllreduceAlgo, ReduceOp, Universe};

const RANKS: usize = 4;

fn allreduce_algorithms() {
    group("allreduce");
    for elems in [512usize, 8192, 131_072] {
        for (name, algo) in [
            ("ring", AllreduceAlgo::Ring),
            ("recursive_doubling", AllreduceAlgo::RecursiveDoubling),
        ] {
            bench(&format!("{name}/{elems}"), 10, move || {
                Universe::run(RANKS, move |comm| {
                    let mut data = vec![comm.rank() as f64 + 1.0; elems];
                    for _ in 0..4 {
                        comm.allreduce(ReduceOp::Sum, &mut data, algo).unwrap();
                    }
                    data[0]
                })
            });
        }
    }
}

fn c_operator_collective() {
    // the exact shape of the operator C's collective: an allgather of
    // per-rank column block sums (one call per C application)
    group("c_operator_allgather");
    for cols in [720usize, 720 * 6] {
        bench(&format!("cols={cols}"), 10, move || {
            Universe::run(RANKS, move |comm| {
                let data = vec![1.0; cols];
                let mut acc = 0.0;
                for _ in 0..4 {
                    let g = comm.allgather(&data).unwrap();
                    acc += g[0];
                }
                acc
            })
        });
    }
}

fn filter_transpose() {
    // the X-Y decomposition's distributed-filter transposes (Figure 6's
    // dominating term): one alltoallv each way
    group("filter_alltoall");
    for rows in [32usize, 256] {
        let per_dest = rows * 720 / RANKS / RANKS;
        bench(&format!("rows={rows}"), 10, move || {
            Universe::run(RANKS, move |comm| {
                let send: Vec<Vec<f64>> = (0..RANKS).map(|d| vec![d as f64; per_dest]).collect();
                let r = comm.alltoallv(&send).unwrap();
                r[0].first().copied().unwrap_or(0.0)
            })
        });
    }
}

fn main() {
    allreduce_algorithms();
    c_operator_collective();
    filter_transpose();
}
