//! Collective primitives of the runtime — the executable analogue of
//! Figure 6 plus the ring-vs-recursive-doubling ablation (`DESIGN.md` §6):
//! the paper's Theorem 4.2 cites the ring family as bandwidth-optimal for
//! the long vectors the summation operator `C` reduces.

use agcm_comm::{AllreduceAlgo, ReduceOp, Universe};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const RANKS: usize = 4;

fn allreduce_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("allreduce");
    group.sample_size(20);
    for elems in [512usize, 8192, 131_072] {
        group.throughput(Throughput::Bytes((elems * 8) as u64));
        for (name, algo) in [
            ("ring", AllreduceAlgo::Ring),
            ("recursive_doubling", AllreduceAlgo::RecursiveDoubling),
        ] {
            group.bench_with_input(
                BenchmarkId::new(name, elems),
                &elems,
                |b, &elems| {
                    b.iter(|| {
                        let sums = Universe::run(RANKS, move |comm| {
                            let mut data = vec![comm.rank() as f64 + 1.0; elems];
                            for _ in 0..4 {
                                comm.allreduce(ReduceOp::Sum, &mut data, algo).unwrap();
                            }
                            data[0]
                        });
                        std::hint::black_box(sums)
                    });
                },
            );
        }
    }
    group.finish();
}

fn c_operator_collective(c: &mut Criterion) {
    // the exact shape of the operator C's collective: an allgather of
    // per-rank column block sums (one call per C application)
    let mut group = c.benchmark_group("c_operator_allgather");
    group.sample_size(20);
    for cols in [720usize, 720 * 6] {
        group.throughput(Throughput::Bytes((cols * 8) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(cols), &cols, |b, &cols| {
            b.iter(|| {
                let out = Universe::run(RANKS, move |comm| {
                    let data = vec![1.0; cols];
                    let mut acc = 0.0;
                    for _ in 0..4 {
                        let g = comm.allgather(&data).unwrap();
                        acc += g[0];
                    }
                    acc
                });
                std::hint::black_box(out)
            });
        });
    }
    group.finish();
}

fn filter_transpose(c: &mut Criterion) {
    // the X-Y decomposition's distributed-filter transposes (Figure 6's
    // dominating term): one alltoallv each way
    let mut group = c.benchmark_group("filter_alltoall");
    group.sample_size(20);
    for rows in [32usize, 256] {
        let per_dest = rows * 720 / RANKS / RANKS;
        group.throughput(Throughput::Bytes((per_dest * RANKS * 8) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(rows), &per_dest, |b, &pd| {
            b.iter(|| {
                let out = Universe::run(RANKS, move |comm| {
                    let send: Vec<Vec<f64>> =
                        (0..RANKS).map(|d| vec![d as f64; pd]).collect();
                    let r = comm.alltoallv(&send).unwrap();
                    r[0].first().copied().unwrap_or(0.0)
                });
                std::hint::black_box(out)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, allreduce_algorithms, c_operator_collective, filter_transpose);
criterion_main!(benches);
