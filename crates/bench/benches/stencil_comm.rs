//! Halo-exchange benchmarks — the executable analogue of Figure 7 and the
//! halo-depth ablation of `DESIGN.md` §12: thirteen shallow exchanges (the
//! original schedule) versus two deep ones (the communication-avoiding
//! schedule), on real thread-backed ranks.

use agcm_bench::timing::{bench, group};
use agcm_comm::Universe;
use agcm_core::par::{ExField, HaloExchanger};
use agcm_mesh::{Decomposition, Field2, Field3, HaloWidths, ProcessGrid};

const RANKS: usize = 4;
const EXTENTS: (usize, usize, usize) = (96, 48, 16);

fn decomp() -> Decomposition {
    Decomposition::new(EXTENTS, ProcessGrid::yz(2, 2).unwrap()).unwrap()
}

/// one full exchange of `fields3` 3-D fields + one 2-D field at `depth`
fn run_exchanges(rounds: usize, depth: usize, fields3: usize) -> f64 {
    let out = Universe::run(RANKS, move |comm| {
        let d = decomp();
        let sub = d.subdomain(comm.rank());
        let (nx, ny, nz) = sub.extents();
        let h = HaloWidths::uniform(depth);
        let mut f3: Vec<Field3> = (0..fields3)
            .map(|i| {
                let mut f = Field3::new(nx, ny, nz, h);
                f.fill(i as f64);
                f
            })
            .collect();
        let mut f2 = Field2::new(nx, ny, h);
        let mut ex = HaloExchanger::new(d, comm.rank());
        for _ in 0..rounds {
            let mut fields: Vec<ExField> = f3.iter_mut().map(ExField::F3).collect();
            fields.push(ExField::F2(&mut f2));
            ex.exchange(comm, h, &mut fields).unwrap();
        }
        f3[0].get(0, -1, 0)
    });
    out[0]
}

fn schedule_comparison() {
    group("halo_schedule");
    // original: 13 one-deep exchanges of 4 arrays
    bench("original_13x_depth1", 10, || run_exchanges(13, 1, 3));
    // communication-avoiding: 2 deep exchanges of 7/5 arrays (approximated
    // as 2 x 6 here)
    bench("ca_2x_depth5", 10, || run_exchanges(2, 5, 5));
}

fn halo_depth_ablation() {
    // fixed total sweep budget of 12: depth d needs ceil(12/d) exchanges —
    // the frequency/volume trade-off at the heart of §4.3.1
    group("halo_depth_ablation");
    for depth in [1usize, 2, 3, 4, 6] {
        let rounds = 12usize.div_ceil(depth);
        bench(&format!("depth={depth}"), 10, move || {
            run_exchanges(rounds, depth, 4)
        });
    }
}

fn overlap_vs_blocking() {
    // post/compute/finish vs post+finish back-to-back (§4.3.1's overlap)
    group("overlap");
    for overlapped in [false, true] {
        let name = if overlapped {
            "post_compute_finish"
        } else {
            "blocking"
        };
        bench(name, 10, move || {
            Universe::run(RANKS, move |comm| {
                let d = decomp();
                let sub = d.subdomain(comm.rank());
                let (nx, ny, nz) = sub.extents();
                let h = HaloWidths::uniform(2);
                let mut f = Field3::new(nx, ny, nz, h);
                let mut ex = HaloExchanger::new(d, comm.rank());
                let mut acc = 0.0f64;
                for _ in 0..6 {
                    let mut fields = [ExField::F3(&mut f)];
                    let pending = ex.post_sends(comm, h, &mut fields).unwrap();
                    if overlapped {
                        // "inner computation" between post and finish
                        for i in 0..20_000u64 {
                            acc += (i as f64).sqrt();
                        }
                    }
                    ex.finish_recvs(comm, pending, &mut fields).unwrap();
                    if !overlapped {
                        for i in 0..20_000u64 {
                            acc += (i as f64).sqrt();
                        }
                    }
                }
                acc
            })
        });
    }
}

fn main() {
    schedule_comparison();
    halo_depth_ablation();
    overlap_vs_blocking();
}
