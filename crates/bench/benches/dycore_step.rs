//! Real (thread-backed) step timing of the three configurations the paper
//! compares — the executable analogue of Figure 8 at laptop scale.
//!
//! At 4 ranks on a workstation the network is shared memory, so these
//! numbers measure the *computation + orchestration* side; the large-scale
//! communication behaviour is what the `figures` binary models from the
//! counted traffic.

use agcm_comm::Universe;
use agcm_core::init;
use agcm_core::par::{Alg1Model, CaModel};
use agcm_core::serial::{Iteration, SerialModel};
use agcm_core::ModelConfig;
use agcm_mesh::ProcessGrid;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_config() -> ModelConfig {
    let mut cfg = ModelConfig::test_medium();
    cfg.ny = 48; // 4 y-blocks hold the full CA halo at M = 3
    cfg
}

fn serial_steps(c: &mut Criterion) {
    let cfg = bench_config();
    let mut group = c.benchmark_group("serial_step");
    for (name, variant) in [
        ("exact", Iteration::Exact),
        ("approximate", Iteration::Approximate),
    ] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut model = SerialModel::new(&cfg, variant).unwrap();
            let ic = init::perturbed_rest(model.geom(), 150.0, 1.0, 5);
            model.set_state(&ic);
            b.iter(|| {
                model.step();
                std::hint::black_box(model.state.phi.get(0, 0, 0))
            });
        });
    }
    group.finish();
}

fn parallel_steps(c: &mut Criterion) {
    let cfg = bench_config();
    let mut group = c.benchmark_group("parallel_4ranks");
    group.sample_size(10);
    let steps = 3usize;

    let cfg1 = cfg.clone();
    group.bench_function("alg1_yz_3steps", |b| {
        b.iter(|| {
            let cfg = cfg1.clone();
            let out = Universe::run(4, move |comm| {
                let mut m =
                    Alg1Model::new(&cfg, ProcessGrid::yz(4, 1).unwrap(), comm).unwrap();
                let ic = init::perturbed_rest(m.geom(), 150.0, 1.0, 5);
                m.set_state(&ic);
                m.run(comm, steps).unwrap();
                m.state.max_abs()
            });
            std::hint::black_box(out)
        });
    });

    let cfg2 = cfg.clone();
    group.bench_function("alg2_ca_3steps", |b| {
        b.iter(|| {
            let cfg = cfg2.clone();
            let out = Universe::run(4, move |comm| {
                let mut m = CaModel::new(&cfg, ProcessGrid::yz(4, 1).unwrap(), comm).unwrap();
                let ic = init::perturbed_rest(m.geom(), 150.0, 1.0, 5);
                m.set_state(&ic);
                m.run(comm, steps).unwrap();
                m.state.max_abs()
            });
            std::hint::black_box(out)
        });
    });
    group.finish();
}

criterion_group!(benches, serial_steps, parallel_steps);
criterion_main!(benches);
