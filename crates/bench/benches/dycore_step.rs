//! Real (thread-backed) step timing of the three configurations the paper
//! compares — the executable analogue of Figure 8 at laptop scale.
//!
//! At 4 ranks on a workstation the network is shared memory, so these
//! numbers measure the *computation + orchestration* side; the large-scale
//! communication behaviour is what the `figures` binary models from the
//! counted traffic.

use agcm_bench::timing::{bench, group};
use agcm_comm::Universe;
use agcm_core::init;
use agcm_core::par::{Alg1Model, CaModel};
use agcm_core::serial::{Iteration, SerialModel};
use agcm_core::ModelConfig;
use agcm_mesh::ProcessGrid;

fn bench_config() -> ModelConfig {
    let mut cfg = ModelConfig::test_medium();
    cfg.ny = 48; // 4 y-blocks hold the full CA halo at M = 3
    cfg
}

fn serial_steps() {
    let cfg = bench_config();
    group("serial_step");
    for (name, variant) in [
        ("exact", Iteration::Exact),
        ("approximate", Iteration::Approximate),
    ] {
        let mut model = SerialModel::new(&cfg, variant).unwrap();
        let ic = init::perturbed_rest(model.geom(), 150.0, 1.0, 5);
        model.set_state(&ic);
        bench(name, 10, || {
            model.step();
            model.state.phi.get(0, 0, 0)
        });
    }
}

fn parallel_steps() {
    let cfg = bench_config();
    group("parallel_4ranks");
    let steps = 3usize;

    let cfg1 = cfg.clone();
    bench("alg1_yz_3steps", 5, move || {
        let cfg = cfg1.clone();
        Universe::run(4, move |comm| {
            let mut m = Alg1Model::new(&cfg, ProcessGrid::yz(4, 1).unwrap(), comm).unwrap();
            let ic = init::perturbed_rest(m.geom(), 150.0, 1.0, 5);
            m.set_state(&ic);
            m.run(comm, steps).unwrap();
            m.state.max_abs()
        })
    });

    let cfg2 = cfg.clone();
    bench("alg2_ca_3steps", 5, move || {
        let cfg = cfg2.clone();
        Universe::run(4, move |comm| {
            let mut m = CaModel::new(&cfg, ProcessGrid::yz(4, 1).unwrap(), comm).unwrap();
            let ic = init::perturbed_rest(m.geom(), 150.0, 1.0, 5);
            m.set_state(&ic);
            m.run(comm, steps).unwrap();
            m.state.max_abs()
        })
    });
}

fn main() {
    serial_steps();
    parallel_steps();
}
