//! Per-operator micro-benchmark: row-sliced kernels vs scalar references.
//!
//! Prints a ns/point table for every rewritten operator at 1, 2 and 4
//! workers.  `figures perf` runs the same measurement and emits it as
//! `BENCH_kernels.json`; this harness is the interactive view
//! (`cargo bench --bench kernels`).

use agcm_bench::kernels::measure_kernels;
use agcm_bench::timing::group;
use agcm_core::pool;
use agcm_core::ModelConfig;

fn main() {
    let cfg = ModelConfig::test_medium();
    for nt in [1usize, 2, 4] {
        group(&format!("kernels ({nt} workers, ns/point, median of 9)"));
        let perfs = pool::with_workers(nt, || measure_kernels(&cfg, 3, 9));
        println!(
            "{:<12} {:>10} {:>14} {:>17} {:>9}",
            "kernel", "points", "row ns/pt", "scalar ns/pt", "speedup"
        );
        for p in perfs {
            println!(
                "{:<12} {:>10} {:>14.3} {:>17.3} {:>8.2}x",
                p.name, p.points, p.row_ns_per_point, p.scalar_ns_per_point, p.speedup
            );
        }
    }
}
