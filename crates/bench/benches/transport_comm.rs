//! Transport-layer benchmarks: the same halo-exchange worlds timed over the
//! in-memory channel transport and over the Unix-domain-socket byte-stream
//! transport (`agcm-run`'s wire).  The gap between the two is the cost of
//! real kernel round-trips plus framing/checksumming — an upper bound on
//! what moving from threads to processes costs the reproduction, and a
//! sanity check that the socket path is fast enough for CI worlds.

use agcm_bench::timing::{bench, group};
use agcm_comm::{Endpoint, Universe};
use agcm_core::par::{ExField, HaloExchanger};
use agcm_mesh::{Decomposition, Field3, HaloWidths, ProcessGrid};

const RANKS: usize = 4;
const EXTENTS: (usize, usize, usize) = (96, 48, 16);

#[derive(Clone, Copy)]
enum Via {
    Mpsc,
    Uds,
}

/// one CA-style deep exchange round over the chosen transport
fn run_exchanges(via: Via, rounds: usize, depth: usize) -> f64 {
    let body = move |comm: &mut agcm_comm::Communicator| {
        let d = Decomposition::new(EXTENTS, ProcessGrid::yz(2, 2).unwrap()).unwrap();
        let sub = d.subdomain(comm.rank());
        let (nx, ny, nz) = sub.extents();
        let h = HaloWidths::uniform(depth);
        let mut f3: Vec<Field3> = (0..5)
            .map(|i| {
                let mut f = Field3::new(nx, ny, nz, h);
                f.fill(i as f64);
                f
            })
            .collect();
        let mut ex = HaloExchanger::new(d, comm.rank());
        for _ in 0..rounds {
            let mut fields: Vec<ExField> = f3.iter_mut().map(ExField::F3).collect();
            ex.exchange(comm, h, &mut fields).unwrap();
        }
        f3[0].get(0, -1, 0)
    };
    let out = match via {
        Via::Mpsc => Universe::run(RANKS, body),
        Via::Uds => Universe::run_sockets(RANKS, &Endpoint::unique_uds(), body),
    };
    out[0]
}

fn main() {
    // NB: the UDS numbers include the per-iteration mesh connect/teardown
    // (p·(p-1) socket pairs), exactly what one `agcm-run` world pays
    group("transport_halo");
    bench("mpsc_2x_depth5", 10, || run_exchanges(Via::Mpsc, 2, 5));
    bench("uds_2x_depth5", 10, || run_exchanges(Via::Uds, 2, 5));
    group("transport_shallow");
    bench("mpsc_13x_depth1", 10, || run_exchanges(Via::Mpsc, 13, 1));
    bench("uds_13x_depth1", 10, || run_exchanges(Via::Uds, 13, 1));
}
