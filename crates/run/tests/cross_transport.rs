//! Cross-transport equivalence (ISSUE 5): the byte-stream socket transport
//! must be *indistinguishable* from the in-memory channel transport at the
//! level everything above the [`agcm_comm::Transport`] trait can observe —
//! integrator results bitwise, fault schedules byte-for-byte.
//!
//! These tests run the same worlds twice, once per transport, inside one
//! test process (threads over `Universe::run` vs threads over
//! `Universe::run_sockets`); the final test drives the `agcm-run` binary so
//! the *multi-process* path — env handshake, mesh dial-in, gathered-state
//! files — is exercised end to end.

#![cfg(unix)]

use agcm_comm::{Endpoint, FaultPlan, Universe};
use agcm_core::init;
use agcm_core::par::{gather_ca_state, Alg1Model, CaModel, GlobalState, RetryPolicy};
use agcm_core::serial::{Iteration, SerialModel};
use agcm_core::ModelConfig;
use agcm_mesh::ProcessGrid;
use std::time::Duration;

const STEPS: usize = 2;
const SEED: u64 = 24473;

/// The launcher's configuration: `test_medium` with `ny = 24` (deep halo
/// fits at py = 2; grouped clamp engages at py = 4).
fn cfg() -> ModelConfig {
    agcm_run::run_config()
}

fn serial_reference(cfg: &ModelConfig, variant: Iteration) -> GlobalState {
    let mut m = SerialModel::new(cfg, variant).unwrap();
    let ic = init::perturbed_rest(m.geom(), 200.0, 1.0, 42);
    m.set_state(&ic);
    m.run(STEPS);
    GlobalState::from_serial(&m.state, m.geom())
}

/// Which world harness to run a program under: in-memory channels or a
/// Unix-domain socket mesh.
#[derive(Clone, Copy)]
enum Via {
    Mpsc,
    Uds,
}

fn run_world<T, F>(via: Via, p: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&mut agcm_comm::Communicator) -> T + Sync,
{
    match via {
        Via::Mpsc => Universe::run(p, f),
        Via::Uds => Universe::run_sockets(p, &Endpoint::unique_uds(), f),
    }
}

fn run_alg1(via: Via, p: usize) -> GlobalState {
    let cfg = cfg();
    let mut results = run_world(via, p, move |comm| {
        let mut m = Alg1Model::new(&cfg, ProcessGrid::yz(p, 1).unwrap(), comm).unwrap();
        let ic = init::perturbed_rest(m.geom(), 200.0, 1.0, 42);
        m.set_state(&ic);
        m.run(comm, STEPS).unwrap();
        m.gather_state(comm).unwrap()
    });
    results.remove(0).expect("rank 0 gathers")
}

fn run_alg2(via: Via, p: usize) -> GlobalState {
    let cfg = cfg();
    let mut results = run_world(via, p, move |comm| {
        let mut m = CaModel::new(&cfg, ProcessGrid::yz(p, 1).unwrap(), comm).unwrap();
        let ic = init::perturbed_rest(m.geom(), 200.0, 1.0, 42);
        m.set_state(&ic);
        m.run(comm, STEPS).unwrap();
        gather_ca_state(&m, comm).unwrap()
    });
    results.remove(0).expect("rank 0 gathers")
}

#[test]
fn alg1_bitwise_identical_across_transports() {
    let gold = serial_reference(&cfg(), Iteration::Exact);
    for p in [2usize, 4] {
        let mpsc = run_alg1(Via::Mpsc, p);
        let uds = run_alg1(Via::Uds, p);
        assert!(
            agcm_run::states_bitwise_equal(&mpsc, &uds),
            "alg1 p={p}: transports disagree (max |diff| = {:e})",
            mpsc.max_abs_diff(&uds)
        );
        assert!(
            agcm_run::states_bitwise_equal(&uds, &gold),
            "alg1 p={p}: socket run differs from serial"
        );
    }
}

#[test]
fn alg2_bitwise_identical_across_transports() {
    let gold = serial_reference(&cfg(), Iteration::Approximate);
    for p in [2usize, 4] {
        let mpsc = run_alg2(Via::Mpsc, p);
        let uds = run_alg2(Via::Uds, p);
        assert!(
            agcm_run::states_bitwise_equal(&mpsc, &uds),
            "alg2 p={p}: transports disagree (max |diff| = {:e})",
            mpsc.max_abs_diff(&uds)
        );
        assert!(
            agcm_run::states_bitwise_equal(&uds, &gold),
            "alg2 p={p}: socket run differs from serial"
        );
    }
}

/// One chaos world: CA at p = 2 with framed, retrying exchanges and the
/// given fault plan; returns the per-rank fault logs (the replay contract's
/// observable) and the gathered state.
fn run_chaos(via: Via, spec: &str) -> (Vec<String>, GlobalState) {
    let cfg = cfg();
    let spec = spec.to_string();
    let results = run_world(via, 2, move |comm| {
        comm.install_faults(FaultPlan::parse(SEED, &spec).unwrap());
        comm.set_timeout(Duration::from_millis(500));
        let mut m = CaModel::new(&cfg, ProcessGrid::yz(2, 1).unwrap(), comm).unwrap();
        m.set_framed(true);
        m.set_retry(RetryPolicy {
            max_attempts: 4,
            backoff: Duration::from_millis(1),
        });
        let ic = init::perturbed_rest(m.geom(), 200.0, 1.0, 42);
        m.set_state(&ic);
        m.run(comm, STEPS).unwrap();
        let log: Vec<String> = comm.fault_log().iter().map(|e| e.to_string()).collect();
        (log.join("\n"), gather_ca_state(&m, comm).unwrap())
    });
    let mut logs = Vec::new();
    let mut global = None;
    for (log, g) in results {
        logs.push(log);
        if let Some(g) = g {
            global = Some(g);
        }
    }
    (logs, global.expect("rank 0 gathers"))
}

/// The PR-3 chaos seed replayed over the socket transport must fire the
/// *identical* fault event stream as over channels — the fault clock
/// counts sends, which no transport may add, drop or reorder — and both
/// recovered runs must end bitwise equal to the fault-free state.
#[test]
fn chaos_seed_fires_identical_fault_schedule_on_both_transports() {
    let specs = [
        // the PR-3 acceptance spec: one dropped halo + one corrupted payload
        "drop:rank=0,user=1,nth=1;corrupt:rank=1,user=1,nth=1,bit=17",
        // reordering: a delayed halo released two events later
        "delay:rank=0,user=1,nth=2,k=2",
        // probabilistic mix over all three rider kinds
        "drop:user=1,prob=0.01;corrupt:user=1,prob=0.01,bit=23;delay:user=1,prob=0.01",
    ];
    let clean = run_alg2(Via::Mpsc, 2);
    for spec in specs {
        let (log_mpsc, state_mpsc) = run_chaos(Via::Mpsc, spec);
        let (log_uds, state_uds) = run_chaos(Via::Uds, spec);
        assert_eq!(
            log_mpsc, log_uds,
            "fault schedules diverged across transports for {spec:?}"
        );
        assert!(
            log_mpsc.iter().any(|l| !l.is_empty()),
            "plan must fire for {spec:?}"
        );
        assert!(
            agcm_run::states_bitwise_equal(&state_mpsc, &state_uds),
            "recovered states diverged across transports for {spec:?}"
        );
        assert!(
            agcm_run::states_bitwise_equal(&state_uds, &clean),
            "socket recovery not bitwise vs fault-free for {spec:?} \
             (max |diff| = {:e})",
            state_uds.max_abs_diff(&clean)
        );
    }
}

/// End-to-end: the real `agcm-run` binary launches one OS process per rank,
/// and its own verification (bitwise state, schedule counts, wire identity)
/// passes for both algorithms.
#[test]
fn launcher_binary_runs_multiprocess_world() {
    let exe = env!("CARGO_BIN_EXE_agcm-run");
    let out = std::process::Command::new(exe)
        .args(["--ranks", "2", "--alg", "both", "--timeout-secs", "120"])
        .env_remove("AGCM_RANK") // never inherit worker role from the test env
        .output()
        .expect("spawn agcm-run");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "agcm-run failed ({}):\n{stdout}\n{stderr}",
        out.status
    );
    assert!(
        stdout.contains("alg1 p=2"),
        "missing alg1 report:\n{stdout}"
    );
    assert!(
        stdout.contains("alg2 p=2"),
        "missing alg2 report:\n{stdout}"
    );
}
