//! End-to-end distributed-trace validation (ISSUE 7): drive the `agcm-run`
//! binary with `--trace` so four OS processes ship their span streams to
//! rank 0 over the Unix-domain socket mesh, then check the merged
//! artifacts with the in-tree RFC 8259 validator — one timeline track per
//! rank, every operator phase the algorithm runs, and a fit report whose
//! critical path joined cleanly against the static schedule (the launcher
//! exits non-zero otherwise, which this test would surface).

#![cfg(unix)]

use agcm_obs as obs;

#[test]
fn traced_multiprocess_run_produces_valid_merged_artifacts() {
    let exe = env!("CARGO_BIN_EXE_agcm-run");
    let dir = std::env::temp_dir().join(format!("agcm_trace_e2e_{}", std::process::id()));
    let out = std::process::Command::new(exe)
        .args([
            "--ranks",
            "4",
            "--alg",
            "both",
            "--trace",
            "--trace-out",
            dir.to_str().expect("utf-8 temp dir"),
            "--timeout-secs",
            "240",
        ])
        .env_remove("AGCM_RANK") // never inherit worker role from the test env
        .output()
        .expect("spawn agcm-run");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "agcm-run --trace failed ({}):\n{stdout}\n{stderr}",
        out.status
    );
    // the parent prints one analysis line per algorithm after the
    // critical-path join and the cost-model fit both succeed
    for alg in [1, 2] {
        assert!(
            stdout.contains(&format!("alg{alg} trace:")),
            "missing alg{alg} trace analysis:\n{stdout}"
        );
    }

    for alg in [1u32, 2] {
        let trace = std::fs::read_to_string(dir.join(format!("trace_alg{alg}.json")))
            .expect("merged trace exists");
        obs::validate_json(&trace).expect("merged trace is RFC 8259-valid");
        // the phases every configuration runs (S2 exists only when the CA
        // smoothing is fused-split; the launcher itself enforces that any
        // phase one rank ran, every rank ran)
        let phases = [
            obs::Phase::A,
            obs::Phase::C,
            obs::Phase::F,
            obs::Phase::L,
            obs::Phase::S1,
        ];
        obs::validate_chrome_trace(&trace, &phases, 1).expect("merged trace covers every phase");
        for rank in 0..4 {
            assert!(
                trace.contains(&format!("\"tid\":{rank}")),
                "alg{alg}: merged trace has no track for rank {rank}"
            );
        }

        let fit = std::fs::read_to_string(dir.join(format!("fit_alg{alg}.json")))
            .expect("fit report exists");
        obs::validate_json(&fit).expect("fit report is RFC 8259-valid");
        for key in ["\"critical_path\"", "\"residuals\"", "\"paper_mesh_chart\""] {
            assert!(fit.contains(key), "alg{alg}: fit report missing {key}");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
