//! `agcm-run` binary: parent/worker dispatch lives in the library so the
//! integration tests can drive both roles directly.

use std::process::ExitCode;

fn main() -> ExitCode {
    ExitCode::from(agcm_run::main_entry())
}
