//! `agcm-run` — multi-process launcher for the socket-backed runtime.
//!
//! Everywhere else in this repository the simulated-MPI world is a set of
//! *threads* inside one test binary.  This crate runs the same SPMD
//! programs as a set of OS **processes**, one per rank, talking through
//! [`agcm_comm::SocketTransport`] (Unix-domain sockets by default, TCP on
//! request) — the closest this reproduction gets to a real `mpirun`.
//!
//! The binary is its own worker: launched with no `AGCM_RANK` in the
//! environment it acts as the parent, spawning `--ranks` copies of itself
//! with the handshake variables set (`AGCM_RANK`, `AGCM_WORLD_SIZE`,
//! `AGCM_ENDPOINT`); launched *with* `AGCM_RANK` it connects the socket
//! mesh and integrates its block of the model.
//!
//! The parent does not merely babysit the children — it re-derives every
//! cross-transport claim the paper reproduction rests on:
//!
//! 1. **Bitwise equivalence**: rank 0's gathered [`GlobalState`] must match
//!    a serial reference integrated in the parent process bit for bit, for
//!    Algorithm 1 (vs the exact iteration) and Algorithm 2 (vs the
//!    approximate iteration).
//! 2. **Certified counts**: each rank's measured steady-state halo traffic
//!    (collective-internal messages subtracted, exactly as
//!    [`agcm_verify::cross_check`] does over threads) must equal the static
//!    schedule analyzer's per-rank prediction.
//! 3. **Wire identity**: the socket transport's byte counters must satisfy
//!    `bytes == 8·elems + WIRE_OVERHEAD_BYTES·msgs` against the logical
//!    element counts — every message the model believes it sent crossed
//!    the kernel as exactly one checksummed frame, nothing more.

#![forbid(unsafe_code)]
use agcm_comm::telemetry::{self, CLOCK_ROUNDS};
use agcm_comm::{
    fit_alpha_beta, fit_gamma, p2p_only_delta, CommFit, Communicator, CostModel, Endpoint,
    SocketTransport, WireStats, WIRE_OVERHEAD_BYTES,
};
use agcm_core::analysis::{
    crossover_rank, predict_step, scaling_chart, AlgKind, CaMode, ScalingPoint,
};
use agcm_core::par::{gather_ca_state, Alg1Model, CaModel, GlobalState};
use agcm_core::serial::{Iteration, SerialModel};
use agcm_core::{init, ModelConfig};
use agcm_mesh::ProcessGrid;
use agcm_obs as obs;
use agcm_obs::dist::{self, OffsetEstimate};
use agcm_verify::{critpath, rank_counts, ScheduleGraph};
use std::fmt::Display;
use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::rc::Rc;
use std::str::FromStr;
use std::time::{Duration, Instant};

/// Magic header of the gathered-state file rank 0 writes.
pub const STATE_MAGIC: &[u8; 8] = b"AGCMGST1";

// ---------------------------------------------------------------------------
// Options
// ---------------------------------------------------------------------------

/// Which algorithm(s) one `agcm-run` invocation executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgSel {
    /// Algorithm 1 (original, exact iteration).
    Alg1,
    /// Algorithm 2 (communication-avoiding, approximate iteration).
    Alg2,
    /// Both, one world after the other.
    Both,
}

impl AlgSel {
    fn algs(self) -> &'static [u32] {
        match self {
            AlgSel::Alg1 => &[1],
            AlgSel::Alg2 => &[2],
            AlgSel::Both => &[1, 2],
        }
    }
}

/// Parsed command line of the parent process.
#[derive(Debug, Clone)]
pub struct RunOpts {
    /// World size (one OS process per rank).
    pub ranks: usize,
    /// Algorithm selection (default: both).
    pub alg: AlgSel,
    /// Total steps per run; the second step is the measured one.
    pub steps: usize,
    /// Endpoint override (`tcp:host:port` or a UDS base path); default is a
    /// fresh unique UDS base under the temp directory per run.
    pub endpoint: Option<String>,
    /// Kill the world and fail if it has not finished within this budget.
    pub timeout: Duration,
    /// Keep the per-run scratch directory instead of deleting it.
    pub keep_out: bool,
    /// Collect per-rank span streams, merge them on rank 0 into one
    /// clock-aligned Chrome trace, and run the critical-path/cost-model
    /// analysis in the parent.
    pub trace: bool,
    /// Where the merged trace and fit artifacts land (default
    /// `target/trace-dist`).
    pub trace_out: Option<PathBuf>,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            ranks: 4,
            alg: AlgSel::Both,
            steps: 2,
            endpoint: None,
            timeout: Duration::from_secs(120),
            keep_out: false,
            trace: false,
            trace_out: None,
        }
    }
}

const USAGE: &str = "agcm-run: run the dynamical core as one OS process per rank over sockets

USAGE:
    agcm-run [--ranks N] [--alg 1|2|both] [--steps N]
             [--endpoint PATH|tcp:HOST:PORT] [--timeout-secs N] [--keep-out]
             [--trace] [--trace-out DIR]

Launches N copies of this binary (handshake via AGCM_RANK / AGCM_WORLD_SIZE /
AGCM_ENDPOINT), integrates the test_medium configuration, and verifies the
gathered state bitwise against an in-process serial reference, the measured
per-rank traffic against the static schedule analyzer, and the wire-level
byte counters against the logical element counts.  Exit code 0 only if every
check passes on every rank.

With --trace every rank records spans, aligns its clock against rank 0 and
ships its stream over a control communicator at run end; rank 0 merges them
into one Chrome trace, and the parent validates the JSON, attributes each
step's critical path against the static schedule, and fits an alpha-beta
cost model to the measured exchanges (artifacts under --trace-out, default
target/trace-dist).";

/// Parse the parent's command line (everything after `argv[0]`).
pub fn parse_args(args: &[String]) -> Result<Option<RunOpts>, String> {
    let mut opts = RunOpts::default();
    let mut it = args.iter();
    let value = |flag: &str, it: &mut std::slice::Iter<String>| {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--help" | "-h" => return Ok(None),
            "--ranks" | "-n" => {
                opts.ranks = parse_num("--ranks", &value("--ranks", &mut it)?)?;
            }
            "--alg" => {
                opts.alg = match value("--alg", &mut it)?.as_str() {
                    "1" => AlgSel::Alg1,
                    "2" => AlgSel::Alg2,
                    "both" => AlgSel::Both,
                    other => return Err(format!("--alg must be 1, 2 or both, got {other:?}")),
                };
            }
            "--steps" => {
                opts.steps = parse_num("--steps", &value("--steps", &mut it)?)?;
            }
            "--endpoint" => opts.endpoint = Some(value("--endpoint", &mut it)?),
            "--timeout-secs" => {
                opts.timeout = Duration::from_secs(parse_num(
                    "--timeout-secs",
                    &value("--timeout-secs", &mut it)?,
                )?);
            }
            "--keep-out" => opts.keep_out = true,
            "--trace" => opts.trace = true,
            "--trace-out" => {
                opts.trace_out = Some(PathBuf::from(value("--trace-out", &mut it)?));
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    if opts.ranks == 0 {
        return Err("--ranks must be at least 1".into());
    }
    if opts.steps < 2 {
        return Err("--steps must be at least 2 (step 2 is the measured one)".into());
    }
    Ok(Some(opts))
}

fn parse_num<T: FromStr>(flag: &str, s: &str) -> Result<T, String>
where
    T::Err: Display,
{
    s.parse().map_err(|e| format!("{flag}: {e}"))
}

/// The model configuration every `agcm-run` world integrates: the medium
/// test mesh widened to `ny = 24` so Algorithm 2's deep halo fits at
/// `py = 2` (12-row blocks ≥ 3M+2 = 11) and clamps to grouped sweeps at
/// `py = 4` — both regimes are bitwise against the serial reference.
pub fn run_config() -> ModelConfig {
    let mut cfg = ModelConfig::test_medium();
    cfg.ny = 24;
    cfg
}

// ---------------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------------

/// Process entry: worker when `AGCM_RANK` is set, parent otherwise.
/// Returns the process exit code.
pub fn main_entry() -> u8 {
    let is_worker = match agcm_comm::parse_env::<usize>("AGCM_RANK") {
        Ok(v) => v.is_some(),
        Err(e) => {
            eprintln!("agcm-run: {e}");
            return 2;
        }
    };
    if is_worker {
        match worker_main() {
            Ok(()) => 0,
            Err(e) => {
                eprintln!("agcm-run worker: {e}");
                1
            }
        }
    } else {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match parse_args(&args) {
            Ok(None) => {
                println!("{USAGE}");
                0
            }
            Ok(Some(opts)) => match run_parent(&opts) {
                Ok(()) => 0,
                Err(e) => {
                    eprintln!("agcm-run: FAILED: {e}");
                    1
                }
            },
            Err(e) => {
                eprintln!("agcm-run: {e}\n\n{USAGE}");
                2
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------------

fn req_env<T: FromStr>(name: &str) -> Result<T, String>
where
    T::Err: Display,
{
    match agcm_comm::parse_env::<T>(name) {
        Ok(Some(v)) => Ok(v),
        Ok(None) => Err(format!("{name} must be set for a worker")),
        Err(e) => Err(e.to_string()),
    }
}

enum Model {
    A1(Box<Alg1Model>),
    A2(Box<CaModel>),
}

impl Model {
    fn step(&mut self, comm: &Communicator) -> Result<(), String> {
        match self {
            Model::A1(m) => m.step(comm),
            Model::A2(m) => m.step(comm),
        }
        .map_err(|e| e.to_string())
    }

    /// What the models' own `run()` wrappers do after the last step: the CA
    /// integrator leaves a smoothing pending that must be applied before
    /// the state is comparable to the serial reference.
    fn finish(&mut self, comm: &Communicator) -> Result<(), String> {
        match self {
            Model::A1(_) => Ok(()),
            Model::A2(m) => m.finish(comm).map_err(|e| e.to_string()),
        }
    }

    fn gather(&mut self, comm: &Communicator) -> Result<Option<GlobalState>, String> {
        match self {
            Model::A1(m) => m.gather_state(comm),
            Model::A2(m) => gather_ca_state(m, comm),
        }
        .map_err(|e| e.to_string())
    }
}

/// One rank of a launched world: connect the socket mesh, integrate, gather
/// to rank 0, and drop a per-rank traffic report in the scratch directory.
pub fn worker_main() -> Result<(), String> {
    let rank: usize = req_env("AGCM_RANK")?;
    let tracing = matches!(agcm_comm::parse_env::<u32>("AGCM_RUN_TRACE"), Ok(Some(1)));
    if tracing {
        // before the socket mesh comes up, so this rank's own handshake
        // and reader-thread spans are captured and attributed to it
        obs::set_rank(rank);
        obs::enable();
    }
    let transport = SocketTransport::from_env()
        .expect("worker_main requires AGCM_RANK")
        .map_err(|e| format!("socket transport: {e}"))?;
    let mut comm = Communicator::on_transport(Rc::new(transport));

    let alg: u32 = req_env("AGCM_RUN_ALG")?;
    let steps: usize = req_env("AGCM_RUN_STEPS")?;
    let py: usize = req_env("AGCM_RUN_PY")?;
    let pz: usize = req_env("AGCM_RUN_PZ")?;
    let out = PathBuf::from(req_env::<String>("AGCM_RUN_OUT")?);
    let cfg = run_config();
    let pgrid = ProcessGrid::yz(py, pz).map_err(|e| e.to_string())?;

    // telemetry rides a dedicated split communicator so its reserved tags
    // never meet model traffic; the clock handshake runs before any model
    // construction, outside every measured bracket
    let ctl = if tracing {
        let ctl = comm
            .split(0, rank)
            .map_err(|e| format!("control communicator: {e}"))?;
        let offset = if rank == 0 {
            telemetry::clock_serve(&ctl, CLOCK_ROUNDS).map_err(|e| format!("clock serve: {e}"))?;
            OffsetEstimate {
                offset_ns: 0,
                rtt_ns: 0,
            }
        } else {
            telemetry::clock_align(&ctl, CLOCK_ROUNDS).map_err(|e| format!("clock align: {e}"))?
        };
        Some((ctl, offset))
    } else {
        None
    };

    // the event log is needed to subtract collective-internal p2p, exactly
    // as the thread-backed verifier cross-check does
    comm.stats().set_event_logging(true);

    let mut model = match alg {
        1 => Model::A1(Box::new(
            Alg1Model::new(&cfg, pgrid, &mut comm).map_err(|e| e.to_string())?,
        )),
        2 => Model::A2(Box::new(
            CaModel::new(&cfg, pgrid, &mut comm).map_err(|e| e.to_string())?,
        )),
        other => return Err(format!("AGCM_RUN_ALG must be 1 or 2, got {other}")),
    };
    match &mut model {
        Model::A1(m) => {
            let ic = init::perturbed_rest(m.geom(), 200.0, 1.0, 42);
            m.set_state(&ic);
        }
        Model::A2(m) => {
            let ic = init::perturbed_rest(m.geom(), 200.0, 1.0, 42);
            m.set_state(&ic);
        }
    }

    // step 1: warm-up (fills the C cache, leaves a smoothing pending);
    // step 2: the steady-state step the static analyzer predicts
    model.step(&comm)?;
    // live progress snapshots only ever run OUTSIDE the s0→delta bracket
    // below, so the verified traffic and wire identities stay exact
    if let Some((ctl, _)) = &ctl {
        if rank != 0 {
            telemetry::send_live_snapshot(ctl, 1, obs::pending_events() as u64)
                .map_err(|e| format!("live snapshot: {e}"))?;
        }
    }
    let s0 = comm.stats().snapshot();
    let e0 = comm.stats().collective_events().len();
    let w0 = comm
        .wire_stats()
        .ok_or("socket transport must expose wire stats")?;
    model.step(&comm)?;
    let delta = comm.stats().snapshot().delta(&s0);
    let events = comm.stats().collective_events()[e0..].to_vec();
    let wire = comm
        .wire_stats()
        .ok_or("socket transport must expose wire stats")?
        .delta(&w0);
    let pure = p2p_only_delta(&delta, &events);
    for s in 2..steps {
        model.step(&comm)?;
        if let Some((ctl, _)) = &ctl {
            if rank != 0 {
                telemetry::send_live_snapshot(ctl, (s + 1) as u64, obs::pending_events() as u64)
                    .map_err(|e| format!("live snapshot: {e}"))?;
            }
        }
    }
    model.finish(&comm)?;

    let traffic = RankTraffic {
        pure_msgs: pure.p2p_sends,
        pure_elems: pure.p2p_send_elems,
        collectives: events.len() as u64,
        raw_sends: delta.p2p_sends,
        raw_send_elems: delta.p2p_send_elems,
        wire_msgs: wire.msgs_sent,
        wire_bytes: wire.bytes_sent,
    };

    let gathered = model.gather(&comm)?;
    if let Some(gs) = gathered {
        write_state(&out.join("state.bin"), &gs).map_err(|e| format!("state.bin: {e}"))?;
    }
    traffic
        .write(&out.join(format!("stats.rank{rank}.txt")))
        .map_err(|e| format!("stats.rank{rank}.txt: {e}"))?;
    if let Some((ctl, offset)) = &ctl {
        finish_trace(ctl, offset, rank, steps, &out)?;
    }
    Ok(())
}

/// End-of-run telemetry: every rank drains its tracer and ships its span
/// stream + metrics snapshot; rank 0 merges all streams onto its own
/// clock and writes the trace artifacts into the scratch directory for
/// the parent to validate and analyze.
fn finish_trace(
    ctl: &Communicator,
    offset: &OffsetEstimate,
    rank: usize,
    steps: usize,
    out: &Path,
) -> Result<(), String> {
    obs::disable();
    let events = obs::drain();
    let metrics = obs::Registry::global().snapshot();
    if rank != 0 {
        return telemetry::ship_telemetry(ctl, offset, &events, &metrics)
            .map_err(|e| format!("shipping telemetry: {e}"));
    }

    // drain the buffered live snapshots (one per peer per unmeasured step)
    let live_per_rank = 1 + steps.saturating_sub(2);
    let mut lines = Vec::new();
    for src in 1..ctl.size() {
        for _ in 0..live_per_rank {
            let (step, pending) = telemetry::recv_live_snapshot(ctl, src)
                .map_err(|e| format!("live snapshot from rank {src}: {e}"))?;
            lines.push(format!("live rank={src} step={step} events={pending}"));
        }
    }

    let wait_line = |rank: usize, m: &obs::MetricsSnapshot| {
        m.histograms.get("comm.recv_wait_ns").map(|h| {
            format!(
                "recv_wait rank={rank} count={} p50={} p95={} p99={} max={}",
                h.count, h.p50, h.p95, h.p99, h.max
            )
        })
    };
    lines.push(format!(
        "offset rank=0 offset_ns=0 rtt_ns=0 events={}",
        events.len()
    ));
    lines.extend(wait_line(0, &metrics));
    let mut streams = vec![(0i64, events)];
    for src in 1..ctl.size() {
        let t = telemetry::collect_telemetry(ctl, src)
            .map_err(|e| format!("telemetry from rank {src}: {e}"))?;
        lines.push(format!(
            "offset rank={src} offset_ns={} rtt_ns={} events={}",
            t.offset_ns,
            t.rtt_ns,
            t.events.len()
        ));
        lines.extend(wait_line(src, &t.metrics));
        streams.push((t.offset_ns, t.events));
    }

    let merged = dist::merge_events(&streams);
    fs::write(out.join("trace.json"), obs::chrome_trace_json(&merged))
        .map_err(|e| format!("trace.json: {e}"))?;
    fs::write(out.join("events.bin"), dist::encode_events(&merged))
        .map_err(|e| format!("events.bin: {e}"))?;
    fs::write(out.join("telemetry.txt"), lines.join("\n") + "\n")
        .map_err(|e| format!("telemetry.txt: {e}"))?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Parent
// ---------------------------------------------------------------------------

/// Launch, await and verify every selected algorithm; `Err` carries the
/// first failed check.
pub fn run_parent(opts: &RunOpts) -> Result<(), String> {
    for &alg in opts.alg.algs() {
        run_one_world(alg, opts)?;
    }
    Ok(())
}

fn run_one_world(alg: u32, opts: &RunOpts) -> Result<(), String> {
    let p = opts.ranks;
    let cfg = run_config();
    let pgrid = ProcessGrid::yz(p, 1).map_err(|e| e.to_string())?;
    let endpoint = match &opts.endpoint {
        Some(s) => Endpoint::parse(s)?,
        None => Endpoint::unique_uds(),
    };
    let out = std::env::temp_dir().join(format!("agcm-run-{}-alg{alg}-p{p}", std::process::id()));
    fs::create_dir_all(&out).map_err(|e| format!("{}: {e}", out.display()))?;
    let exe = std::env::current_exe().map_err(|e| e.to_string())?;

    let mut children: Vec<Child> = Vec::with_capacity(p);
    for rank in 0..p {
        let mut cmd = Command::new(&exe);
        cmd.env("AGCM_RANK", rank.to_string())
            .env("AGCM_WORLD_SIZE", p.to_string())
            .env("AGCM_ENDPOINT", endpoint.to_string())
            .env("AGCM_RUN_ALG", alg.to_string())
            .env("AGCM_RUN_STEPS", opts.steps.to_string())
            .env("AGCM_RUN_PY", p.to_string())
            .env("AGCM_RUN_PZ", "1")
            .env("AGCM_RUN_OUT", &out)
            .stdin(Stdio::null());
        if opts.trace {
            cmd.env("AGCM_RUN_TRACE", "1");
        }
        let child = cmd
            .spawn()
            .map_err(|e| format!("spawning rank {rank}: {e}"))?;
        children.push(child);
    }
    let result = await_world(&mut children, opts.timeout)
        .and_then(|()| verify_world(alg, p, pgrid, &cfg, opts.steps, &out))
        .and_then(|()| {
            if opts.trace {
                analyze_world_trace(alg, p, pgrid, &cfg, opts, &out)
            } else {
                Ok(())
            }
        });
    if result.is_ok() && !opts.keep_out {
        let _ = fs::remove_dir_all(&out);
    } else if result.is_err() {
        eprintln!("agcm-run: scratch directory kept at {}", out.display());
    }
    result
}

/// Wait for every child within `timeout`; on expiry, kill the stragglers.
fn await_world(children: &mut [Child], timeout: Duration) -> Result<(), String> {
    let deadline = Instant::now() + timeout;
    let mut status = vec![None; children.len()];
    loop {
        let mut running = 0usize;
        for (rank, child) in children.iter_mut().enumerate() {
            if status[rank].is_some() {
                continue;
            }
            match child.try_wait() {
                Ok(Some(st)) => status[rank] = Some(st),
                Ok(None) => running += 1,
                Err(e) => return Err(format!("waiting for rank {rank}: {e}")),
            }
        }
        if running == 0 {
            break;
        }
        if Instant::now() >= deadline {
            for child in children.iter_mut() {
                let _ = child.kill();
                let _ = child.wait();
            }
            return Err(format!(
                "world did not finish within {timeout:?}; killed {running} straggler(s)"
            ));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let failed: Vec<String> = status
        .iter()
        .enumerate()
        .filter(|(_, st)| !st.expect("all joined").success())
        .map(|(rank, st)| format!("rank {rank}: {}", st.expect("all joined")))
        .collect();
    if failed.is_empty() {
        Ok(())
    } else {
        Err(format!("worker(s) failed: {}", failed.join("; ")))
    }
}

/// All three post-mortem checks of a finished world; `Err` on the first
/// mismatch, with enough context to debug it.
fn verify_world(
    alg: u32,
    p: usize,
    pgrid: ProcessGrid,
    cfg: &ModelConfig,
    steps: usize,
    out: &Path,
) -> Result<(), String> {
    // 1. bitwise state equivalence against the in-process serial reference
    let gathered =
        read_state(&out.join("state.bin")).map_err(|e| format!("reading gathered state: {e}"))?;
    let variant = if alg == 1 {
        Iteration::Exact
    } else {
        Iteration::Approximate
    };
    let serial = serial_reference(cfg, variant, steps)?;
    if !states_bitwise_equal(&gathered, &serial) {
        return Err(format!(
            "alg{alg} p={p}: gathered state differs from serial reference \
             (max |diff| = {:e})",
            gathered.max_abs_diff(&serial)
        ));
    }

    // 2. measured traffic == static schedule prediction, rank by rank
    let alg_kind = if alg == 1 {
        AlgKind::OriginalYZ
    } else {
        AlgKind::CommAvoiding
    };
    let graph = ScheduleGraph::extract(cfg, alg_kind, CaMode::Grouped, pgrid)?;
    let predicted = rank_counts(&graph);
    let mut wire_bytes_total = 0u64;
    for (rank, pred) in predicted.iter().enumerate() {
        let t = RankTraffic::read(&out.join(format!("stats.rank{rank}.txt")))
            .map_err(|e| format!("stats.rank{rank}.txt: {e}"))?;
        if t.pure_msgs != pred.send_msgs
            || t.pure_elems != pred.send_elems
            || t.collectives != pred.collectives
        {
            return Err(format!(
                "alg{alg} rank {rank}: measured ({} msgs, {} elems, {} colls) != \
                 static schedule ({}, {}, {})",
                t.pure_msgs,
                t.pure_elems,
                t.collectives,
                pred.send_msgs,
                pred.send_elems,
                pred.collectives
            ));
        }
        // 3. wire identity: every logical message crossed the kernel as
        // exactly one frame of 8·elems payload + fixed overhead
        let expect_bytes = 8 * t.raw_send_elems + WIRE_OVERHEAD_BYTES * t.raw_sends;
        if t.wire_msgs != t.raw_sends || t.wire_bytes != expect_bytes {
            return Err(format!(
                "alg{alg} rank {rank}: wire counters ({} frames, {} bytes) != \
                 logical stats ({} msgs, 8·{} + {WIRE_OVERHEAD_BYTES}·{} = {} bytes)",
                t.wire_msgs, t.wire_bytes, t.raw_sends, t.raw_send_elems, t.raw_sends, expect_bytes
            ));
        }
        wire_bytes_total += t.wire_bytes;
    }
    println!(
        "agcm-run: alg{alg} p={p} steps={steps}: state bitwise == serial, \
         measured traffic == static schedule on all {p} ranks, \
         wire identity holds ({wire_bytes_total} bytes in the measured step)"
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// Distributed trace analysis (parent side of --trace)
// ---------------------------------------------------------------------------

/// The step index the critical-path analysis targets: the models stamp
/// spans with their pre-increment step counter, so the warm-up records
/// step 0 and the measured steady-state step — the one the static
/// schedule describes — records step 1.
pub const MEASURED_STEP: u64 = 1;

/// The rank counts charted under the fitted cost model (the paper's
/// evaluation points).
pub const CHART_RANKS: [usize; 4] = [128, 256, 512, 1024];

/// A finite `f64` as a JSON number (non-finite values become `null`).
fn jnum(x: f64) -> String {
    if x.is_finite() {
        format!("{x:e}")
    } else {
        "null".to_string()
    }
}

/// Validate and analyze the merged trace of one finished world:
///
/// 1. the merged Chrome trace must be RFC 8259-valid JSON with at least
///    one span per rank and one `Op` span per operator phase per rank in
///    the measured step;
/// 2. joined against the static [`ScheduleGraph`], the measured step must
///    attribute cleanly (exchange-wait and collective span counts equal
///    the schedule's, per rank) and name its critical path;
/// 3. an α–β fit over the measured exchange spans must report its
///    residuals, and the fitted model is charted on the paper mesh.
///
/// Artifacts (`trace_alg{N}.json`, `fit_alg{N}.json`, `telemetry_alg{N}.txt`)
/// land in `--trace-out` (default `target/trace-dist`).
fn analyze_world_trace(
    alg: u32,
    p: usize,
    pgrid: ProcessGrid,
    cfg: &ModelConfig,
    opts: &RunOpts,
    out: &Path,
) -> Result<(), String> {
    let trace_out = opts
        .trace_out
        .clone()
        .unwrap_or_else(|| PathBuf::from("target/trace-dist"));
    fs::create_dir_all(&trace_out).map_err(|e| format!("{}: {e}", trace_out.display()))?;

    // 1. merged trace: valid JSON, every rank and phase represented
    let trace_src = fs::read_to_string(out.join("trace.json"))
        .map_err(|e| format!("reading merged trace: {e}"))?;
    obs::validate_json(&trace_src).map_err(|e| format!("merged trace is not valid JSON: {e}"))?;
    let blob = fs::read(out.join("events.bin")).map_err(|e| format!("reading events.bin: {e}"))?;
    let merged = dist::decode_events(&blob).map_err(|e| format!("decoding events.bin: {e}"))?;
    // the program is SPMD: any operator phase one rank ran in the measured
    // step, every rank must have run (Alg 1 has no deferred-smoothing S2
    // phase, so the required set is derived from the trace, not hardcoded)
    let ran = |rank: usize, phase: obs::Phase| {
        merged.iter().any(|e| {
            e.rank == rank
                && e.kind == obs::SpanKind::Op
                && e.phase == phase
                && e.step == MEASURED_STEP
        })
    };
    for rank in 0..p {
        if !merged.iter().any(|e| e.rank == rank) {
            return Err(format!(
                "alg{alg}: merged trace has no track for rank {rank}"
            ));
        }
        for phase in obs::Phase::OPERATORS {
            if !ran(rank, phase) && (0..p).any(|r| ran(r, phase)) {
                return Err(format!(
                    "alg{alg} rank {rank}: no phase-{} op span in the measured step \
                     (other ranks ran it)",
                    phase.label()
                ));
            }
        }
    }
    if !(0..p).any(|r| ran(r, obs::Phase::A)) {
        return Err(format!(
            "alg{alg}: no adaptation op spans at all in the measured step"
        ));
    }

    // 2. critical path of the measured step against the static schedule
    let alg_kind = if alg == 1 {
        AlgKind::OriginalYZ
    } else {
        AlgKind::CommAvoiding
    };
    let graph = ScheduleGraph::extract(cfg, alg_kind, CaMode::Grouped, pgrid)?;
    let measured: Vec<obs::Event> = merged
        .iter()
        .filter(|e| e.step == MEASURED_STEP)
        .cloned()
        .collect();
    let rep = critpath::analyze(&measured, &graph);
    if !rep.is_consistent() {
        return Err(format!(
            "alg{alg}: merged trace inconsistent with the static schedule: {}",
            rep.errors.join("; ")
        ));
    }
    let step = rep
        .steps
        .first()
        .ok_or_else(|| format!("alg{alg}: no complete measured step in the merged trace"))?;

    // 3. fit the measured exchanges; γ from the critical rank's compute
    let fit = fit_alpha_beta(&rep.samples).map_err(|e| format!("alg{alg} cost fit: {e}"))?;
    let probe = CostModel {
        alpha: 0.0,
        beta: 0.0,
        gamma: 1.0,
        sync: 0.0,
        name: "probe",
    };
    let updates = predict_step(cfg, alg_kind, pgrid, &probe).compute_s;
    let gamma = fit_gamma(step.breakdown.compute_ns as f64 * 1e-9, updates);
    let fitted = fit.model(gamma);
    let paper = ModelConfig::paper_50km();
    let chart = scaling_chart(
        &paper,
        AlgKind::OriginalYZ,
        &CHART_RANKS,
        |p, _| ProcessGrid::yz(p / 8, 8).expect("paper grid"),
        &fitted,
    );
    let crossover = crossover_rank(&chart);

    fs::copy(
        out.join("trace.json"),
        trace_out.join(format!("trace_alg{alg}.json")),
    )
    .map_err(|e| format!("copying trace: {e}"))?;
    let _ = fs::copy(
        out.join("telemetry.txt"),
        trace_out.join(format!("telemetry_alg{alg}.txt")),
    );
    let fit_json = fit_report_json(alg, p, &fit, gamma, step, &chart, crossover);
    obs::validate_json(&fit_json).map_err(|e| format!("fit report JSON invalid: {e}"))?;
    fs::write(trace_out.join(format!("fit_alg{alg}.json")), &fit_json)
        .map_err(|e| format!("fit_alg{alg}.json: {e}"))?;

    let b = &step.breakdown;
    let pct = |ns: u64| 100.0 * ns as f64 / (step.critical_wall_ns.max(1)) as f64;
    let block = step
        .blocking
        .first()
        .map(|a| format!("{} ({})", a.op_label, a.name))
        .unwrap_or_else(|| "none".to_string());
    println!(
        "agcm-run: alg{alg} trace: {} events, {p} tracks merged; step {}: makespan {:.1} µs, \
         critical rank {} (compute {:.0}%, pack {:.0}%, wire-wait {:.0}%, collective {:.0}%, \
         longest block: {block}); fit[{}] α={:.3e} s β={:.3e} s/B sync={:.3e} s \
         rel_rmse={:.3} over {} samples; paper-mesh crossover: {}",
        merged.len(),
        step.step,
        step.makespan_ns as f64 / 1e3,
        step.critical_rank,
        pct(b.compute_ns),
        pct(b.pack_ns),
        pct(b.wire_wait_ns),
        pct(b.collective_ns),
        fit.terms.label(),
        fit.alpha,
        fit.beta,
        fit.sync,
        fit.rel_rmse(),
        fit.residuals.len(),
        match crossover {
            Some(p) => format!("p = {p}"),
            None => "none in charted range".to_string(),
        },
    );
    Ok(())
}

/// Hand-rolled (std-only) JSON fit/critical-path report of one world.
fn fit_report_json(
    alg: u32,
    p: usize,
    fit: &CommFit,
    gamma: f64,
    step: &critpath::StepCriticalPath,
    chart: &[ScalingPoint],
    crossover: Option<usize>,
) -> String {
    let mut s = String::with_capacity(4096);
    s.push_str("{\n");
    s.push_str("  \"schema_version\": 1,\n");
    s.push_str(&format!("  \"alg\": {alg},\n  \"ranks\": {p},\n"));
    s.push_str(&format!(
        "  \"fit\": {{\"terms\": \"{}\", \"alpha_s\": {}, \"beta_s_per_byte\": {}, \
         \"sync_s\": {}, \"gamma_s\": {}, \"rel_rmse\": {}, \"max_rel_err\": {}}},\n",
        fit.terms.label(),
        jnum(fit.alpha),
        jnum(fit.beta),
        jnum(fit.sync),
        jnum(gamma),
        jnum(fit.rel_rmse()),
        jnum(fit.max_rel_err()),
    ));
    let rows: Vec<String> = fit
        .residuals
        .iter()
        .map(|r| {
            format!(
                "    {{\"op\": {}, \"name\": \"{}\", \"msgs\": {}, \"bytes\": {}, \
                 \"measured_s\": {}, \"predicted_s\": {}, \"rel_err\": {}}}",
                r.op,
                r.name,
                r.msgs,
                r.bytes,
                jnum(r.measured_s),
                jnum(r.predicted_s),
                jnum(r.rel_err()),
            )
        })
        .collect();
    s.push_str(&format!("  \"residuals\": [\n{}\n  ],\n", rows.join(",\n")));
    let b = &step.breakdown;
    let blocking: Vec<String> = step
        .blocking
        .iter()
        .take(5)
        .map(|a| {
            format!(
                "      {{\"rank\": {}, \"op\": {}, \"label\": \"{}\", \"name\": \"{}\", \
                 \"dur_ns\": {}, \"bytes\": {}}}",
                a.rank, a.op, a.op_label, a.name, a.dur_ns, a.bytes
            )
        })
        .collect();
    s.push_str(&format!(
        "  \"critical_path\": {{\"step\": {}, \"makespan_ns\": {}, \"critical_rank\": {}, \
         \"critical_wall_ns\": {}, \"compute_ns\": {}, \"pack_ns\": {}, \"wire_wait_ns\": {}, \
         \"collective_ns\": {},\n    \"blocking\": [\n{}\n    ]}},\n",
        step.step,
        step.makespan_ns,
        step.critical_rank,
        step.critical_wall_ns,
        b.compute_ns,
        b.pack_ns,
        b.wire_wait_ns,
        b.collective_ns,
        blocking.join(",\n"),
    ));
    let points: Vec<String> = chart
        .iter()
        .map(|pt| {
            format!(
                "    {{\"p\": {}, \"baseline_s\": {}, \"ca_s\": {}, \"speedup\": {}}}",
                pt.p,
                jnum(pt.baseline_s),
                jnum(pt.ca_s),
                jnum(pt.speedup()),
            )
        })
        .collect();
    s.push_str(&format!(
        "  \"paper_mesh_chart\": {{\"baseline\": \"original Y-Z\", \"points\": [\n{}\n  ], \
         \"crossover_p\": {}}}\n",
        points.join(",\n"),
        match crossover {
            Some(p) => p.to_string(),
            None => "null".to_string(),
        },
    ));
    s.push_str("}\n");
    s
}

fn serial_reference(
    cfg: &ModelConfig,
    variant: Iteration,
    steps: usize,
) -> Result<GlobalState, String> {
    let mut m = SerialModel::new(cfg, variant).map_err(|e| e.to_string())?;
    let ic = init::perturbed_rest(m.geom(), 200.0, 1.0, 42);
    m.set_state(&ic);
    m.run(steps);
    Ok(GlobalState::from_serial(&m.state, m.geom()))
}

/// Bit-pattern equality of every field (stricter than `max_abs_diff == 0`,
/// which cannot tell `-0.0` from `0.0`).
pub fn states_bitwise_equal(a: &GlobalState, b: &GlobalState) -> bool {
    let bits = |xs: &[f64], ys: &[f64]| {
        xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| x.to_bits() == y.to_bits())
    };
    a.extents == b.extents
        && bits(&a.u, &b.u)
        && bits(&a.v, &b.v)
        && bits(&a.phi, &b.phi)
        && bits(&a.psa, &b.psa)
}

// ---------------------------------------------------------------------------
// On-disk exchange formats (state + per-rank traffic)
// ---------------------------------------------------------------------------

/// One rank's traffic report for the measured (second) step.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RankTraffic {
    /// Halo messages sent (collective-internal p2p subtracted).
    pub pure_msgs: u64,
    /// Halo `f64` elements sent.
    pub pure_elems: u64,
    /// Collective calls entered.
    pub collectives: u64,
    /// All p2p messages sent, collective-internal included.
    pub raw_sends: u64,
    /// All `f64` elements sent, collective-internal included.
    pub raw_send_elems: u64,
    /// Frames the transport wrote.
    pub wire_msgs: u64,
    /// Bytes the transport wrote (headers + payloads + checksums).
    pub wire_bytes: u64,
}

impl RankTraffic {
    /// Serialize as `key=value` lines.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        let body = format!(
            "pure_msgs={}\npure_elems={}\ncollectives={}\nraw_sends={}\n\
             raw_send_elems={}\nwire_msgs={}\nwire_bytes={}\n",
            self.pure_msgs,
            self.pure_elems,
            self.collectives,
            self.raw_sends,
            self.raw_send_elems,
            self.wire_msgs,
            self.wire_bytes
        );
        fs::write(path, body)
    }

    /// Parse a file written by [`RankTraffic::write`].
    pub fn read(path: &Path) -> io::Result<RankTraffic> {
        let body = fs::read_to_string(path)?;
        let mut t = RankTraffic::default();
        for line in body.lines() {
            let Some((k, v)) = line.split_once('=') else {
                return Err(bad(format!("malformed line {line:?}")));
            };
            let v: u64 = v.parse().map_err(|e| bad(format!("{k}: {e}")))?;
            match k {
                "pure_msgs" => t.pure_msgs = v,
                "pure_elems" => t.pure_elems = v,
                "collectives" => t.collectives = v,
                "raw_sends" => t.raw_sends = v,
                "raw_send_elems" => t.raw_send_elems = v,
                "wire_msgs" => t.wire_msgs = v,
                "wire_bytes" => t.wire_bytes = v,
                other => return Err(bad(format!("unknown key {other:?}"))),
            }
        }
        Ok(t)
    }
}

fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Write a gathered state with exact bit patterns (little-endian `f64`
/// bits), so the parent's comparison is genuinely bitwise.
pub fn write_state(path: &Path, gs: &GlobalState) -> io::Result<()> {
    let mut w = io::BufWriter::new(fs::File::create(path)?);
    w.write_all(STATE_MAGIC)?;
    let (nx, ny, nz) = gs.extents;
    for d in [nx as u64, ny as u64, nz as u64] {
        w.write_all(&d.to_le_bytes())?;
    }
    for arr in [&gs.u, &gs.v, &gs.phi, &gs.psa] {
        w.write_all(&(arr.len() as u64).to_le_bytes())?;
        for v in arr.iter() {
            w.write_all(&v.to_bits().to_le_bytes())?;
        }
    }
    w.flush()
}

/// Read a state written by [`write_state`].
pub fn read_state(path: &Path) -> io::Result<GlobalState> {
    let mut r = io::BufReader::new(fs::File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != STATE_MAGIC {
        return Err(bad(format!("bad magic {magic:02x?}")));
    }
    let nx = r_u64(&mut r)? as usize;
    let ny = r_u64(&mut r)? as usize;
    let nz = r_u64(&mut r)? as usize;
    let mut arrs = [const { Vec::new() }; 4];
    for arr in arrs.iter_mut() {
        *arr = r_vec(&mut r)?;
    }
    let [u, v, phi, psa] = arrs;
    Ok(GlobalState {
        extents: (nx, ny, nz),
        u,
        v,
        phi,
        psa,
    })
}

fn r_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn r_vec(r: &mut impl Read) -> io::Result<Vec<f64>> {
    let n = r_u64(r)?;
    if n > 1 << 32 {
        return Err(bad(format!("absurd array length {n}")));
    }
    let mut out = Vec::with_capacity(n as usize);
    let mut b = [0u8; 8];
    for _ in 0..n {
        r.read_exact(&mut b)?;
        out.push(f64::from_bits(u64::from_le_bytes(b)));
    }
    Ok(out)
}

/// The wire-stats identity the parent asserts, exported for reuse in
/// tests: expected bytes for `msgs` frames carrying `elems` total `f64`s.
pub fn expected_wire_bytes(msgs: u64, elems: u64) -> u64 {
    8 * elems + WIRE_OVERHEAD_BYTES * msgs
}

/// Convenience used by tests: the wire counters of a communicator as a
/// plain struct (zeroes over an in-memory transport).
pub fn wire_or_zero(comm: &Communicator) -> WireStats {
    comm.wire_stats().unwrap_or(WireStats {
        msgs_sent: 0,
        bytes_sent: 0,
        msgs_recvd: 0,
        bytes_recvd: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_defaults_and_flags() {
        let o = parse_args(&[]).unwrap().unwrap();
        assert_eq!(o.ranks, 4);
        assert_eq!(o.alg, AlgSel::Both);
        let args: Vec<String> = ["--ranks", "2", "--alg", "1", "--steps", "3", "--keep-out"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let o = parse_args(&args).unwrap().unwrap();
        assert_eq!(
            (o.ranks, o.alg, o.steps, o.keep_out),
            (2, AlgSel::Alg1, 3, true)
        );
        assert!(parse_args(&["--ranks".into(), "0".into()]).is_err());
        assert!(parse_args(&["--steps".into(), "1".into()]).is_err());
        assert!(parse_args(&["--bogus".into()]).is_err());
        assert!(parse_args(&["--help".into()]).unwrap().is_none());
    }

    #[test]
    fn state_file_round_trips_bit_patterns() {
        let gs = GlobalState {
            extents: (2, 1, 1),
            u: vec![1.5, -0.0],
            v: vec![f64::from_bits(0x7FF0_0000_0000_0001), 0.0],
            phi: vec![std::f64::consts::PI],
            psa: vec![-3.25, 4.0],
        };
        let path = std::env::temp_dir().join(format!("agcm_run_state_{}.bin", std::process::id()));
        write_state(&path, &gs).unwrap();
        let back = read_state(&path).unwrap();
        fs::remove_file(&path).ok();
        assert!(states_bitwise_equal(&back, &gs));
        // -0.0 vs 0.0 must be caught by the bitwise comparison
        let mut flipped = gs.clone();
        flipped.u[1] = 0.0;
        assert!(!states_bitwise_equal(&back, &flipped));
    }

    #[test]
    fn traffic_file_round_trips() {
        let t = RankTraffic {
            pure_msgs: 4,
            pure_elems: 1000,
            collectives: 7,
            raw_sends: 16,
            raw_send_elems: 1200,
            wire_msgs: 16,
            wire_bytes: expected_wire_bytes(16, 1200),
        };
        let path = std::env::temp_dir().join(format!("agcm_run_stats_{}.txt", std::process::id()));
        t.write(&path).unwrap();
        let back = RankTraffic::read(&path).unwrap();
        fs::remove_file(&path).ok();
        assert_eq!(back, t);
    }
}
