//! The statically certified communication counts must be *invariant*
//! under deterministic fault injection (ISSUE 3 satellite): delivery
//! faults move, duplicate, drop or corrupt messages in flight, but the
//! logical traffic of the algorithm — what the schedule graph certifies —
//! must not change.  Framed + retrying exchanges recover every injected
//! fault receiver-side without reposting a single send.

use agcm_core::analysis::{AlgKind, CaMode};
use agcm_core::ModelConfig;
use agcm_mesh::ProcessGrid;
use agcm_verify::{measure_step_under_faults, rank_counts, ScheduleGraph};

const SEED: u64 = 24473;

fn check_under(spec: &str, alg: AlgKind) {
    let cfg = ModelConfig::test_medium();
    let pg = ProcessGrid::yz(2, 2).unwrap();
    let g = ScheduleGraph::extract(&cfg, alg, CaMode::Grouped, pg).unwrap();
    let stat = rank_counts(&g);
    let meas = measure_step_under_faults(&cfg, alg, pg, SEED, spec);
    for (rank, (s, m)) in stat.iter().zip(&meas).enumerate() {
        assert_eq!(
            (s.send_msgs, s.send_elems, s.collectives),
            (m.msgs, m.elems, m.collectives),
            "rank {rank} under '{spec}': static counts diverged from measured"
        );
    }
}

#[test]
fn ca_counts_invariant_under_stall_drop_dup() {
    check_under(
        "stall:rank=1,event=30,ms=20;drop:rank=0,user=1,nth=2;dup:user=1,prob=0.1",
        AlgKind::CommAvoiding,
    );
}

#[test]
fn ca_counts_invariant_under_delay_and_corruption() {
    check_under(
        "delay:user=1,prob=0.25,k=2;corrupt:rank=1,user=1,nth=1,bit=13",
        AlgKind::CommAvoiding,
    );
}

#[test]
fn alg1_counts_invariant_under_faults() {
    check_under(
        "drop:rank=1,user=1,nth=1;dup:user=1,prob=0.1;delay:user=1,prob=0.2,k=1",
        AlgKind::OriginalYZ,
    );
}
