//! Property test (offline substitute for `proptest`): for random
//! `(mesh, process grid, M)` with p ≤ 16, the statically extracted schedule
//! graph reports exactly the per-rank traffic the thread-backed runtime
//! measures, for both algorithms.

use agcm_core::analysis::AlgKind;
use agcm_core::ModelConfig;
use agcm_mesh::ProcessGrid;
use agcm_verify::cross_check;

/// splitmix64 — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() as usize) % (hi - lo + 1)
    }
}

#[test]
fn random_decompositions_cross_check() {
    let mut rng = Rng::new(0xAC6_2018);
    let mut cases = 0;
    while cases < 6 {
        let py = rng.range(1, 4);
        let pz = rng.range(1, 4);
        if py * pz > 16 || py * pz == 1 {
            continue;
        }
        let mut cfg = ModelConfig::test_medium();
        // blocks deep enough for every depth the schedules use
        cfg.ny = py * rng.range(4, 6);
        cfg.nz = pz * rng.range(3, 5);
        cfg.m_iters = rng.range(1, 3);
        let pg = ProcessGrid::yz(py, pz).unwrap();
        for alg in [AlgKind::OriginalYZ, AlgKind::CommAvoiding] {
            cross_check(&cfg, alg, pg).unwrap_or_else(|e| {
                panic!(
                    "case {cases} ({}x{}x{} M={} on {py}x{pz}, {alg:?}): {e}",
                    cfg.nx, cfg.ny, cfg.nz, cfg.m_iters
                )
            });
        }
        cases += 1;
    }
}
