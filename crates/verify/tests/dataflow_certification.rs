//! The dataflow pass proves halo coverage for every feasible schedule at
//! the issue's rank sweep — and refutes deliberately broken ones with
//! counterexamples naming operator, field and uncovered offset.

use agcm_core::analysis::{ca_group_size, AlgKind, CaMode};
use agcm_core::par::schedule::{self, StepOp};
use agcm_core::ModelConfig;
use agcm_mesh::{Axis, ProcessGrid};
use agcm_verify::dataflow::{self, FailureKind};

fn cfg() -> ModelConfig {
    ModelConfig::paper_50km()
}

/// The issue's rank sweep: p ∈ {1..16} ∪ {64, 256, 1024}.
fn rank_sweep() -> Vec<usize> {
    let mut ps: Vec<usize> = (1..=16).collect();
    ps.extend([64, 256, 1024]);
    ps
}

/// Every Y-Z factorization of `p` a single-hop exchange can serve: blocks
/// must exist (`py ≤ ny`, `pz ≤ nz`) and decomposed y blocks must hold the
/// ±2 smoothing stencil (`ny/py ≥ 2`).
fn feasible_yz(c: &ModelConfig, p: usize) -> Vec<ProcessGrid> {
    let mut grids = Vec::new();
    for py in 1..=p {
        if !p.is_multiple_of(py) {
            continue;
        }
        let pz = p / py;
        if py > c.ny || pz > c.nz {
            continue;
        }
        if py > 1 && c.ny / py < 2 {
            continue;
        }
        if let Ok(g) = ProcessGrid::yz(py, pz) {
            grids.push(g);
        }
    }
    grids
}

/// X-Y factorizations for Algorithm 1: x blocks must hold the ±3 sweep
/// stencil.
fn feasible_xy(c: &ModelConfig, p: usize) -> Vec<ProcessGrid> {
    let mut grids = Vec::new();
    for px in 1..=p {
        if !p.is_multiple_of(px) {
            continue;
        }
        let py = p / px;
        if px > c.nx || py > c.ny {
            continue;
        }
        if px > 1 && c.nx / px < 3 {
            continue;
        }
        if py > 1 && c.ny / py < 2 {
            continue;
        }
        if let Ok(g) = ProcessGrid::xy(px, py) {
            grids.push(g);
        }
    }
    grids
}

#[test]
fn proves_all_schedules_at_issue_rank_sweep() {
    let c = cfg();
    for p in rank_sweep() {
        let yz = feasible_yz(&c, p);
        assert!(!yz.is_empty(), "no feasible Y-Z factorization at p={p}");
        for pg in yz {
            let alg1 = dataflow::check(&c, AlgKind::OriginalYZ, CaMode::Grouped, &pg)
                .unwrap_or_else(|ce| panic!("alg1 p={p} {pg:?}: {ce}"));
            assert!(alg1.computes > 0 && alg1.reads_checked > 0);
            let ca = dataflow::check(&c, AlgKind::CommAvoiding, CaMode::Grouped, &pg)
                .unwrap_or_else(|ce| panic!("alg2 p={p} {pg:?}: {ce}"));
            assert!(ca.computes > 0);
            // the paper's idealized accounting is executable (and hence
            // provable) exactly when the grouped schedule reaches it
            let (g, fuse, ga) = ca_group_size(&c, &pg);
            if g == 3 * c.m_iters && fuse && ga == 3 {
                dataflow::check(&c, AlgKind::CommAvoiding, CaMode::PaperIdeal, &pg)
                    .unwrap_or_else(|ce| panic!("ideal p={p} {pg:?}: {ce}"));
            }
        }
        for pg in feasible_xy(&c, p) {
            dataflow::check(&c, AlgKind::OriginalXY, CaMode::Grouped, &pg)
                .unwrap_or_else(|ce| panic!("alg1-XY p={p} {pg:?}: {ce}"));
        }
    }
}

#[test]
fn serial_schedules_prove_trivially_with_no_finite_margin() {
    let c = cfg();
    let pg = ProcessGrid::serial();
    for alg in [AlgKind::OriginalYZ, AlgKind::CommAvoiding] {
        let proof = dataflow::check(&c, alg, CaMode::Grouped, &pg).expect("serial proves");
        assert!(proof.computes > 0);
        // nothing is decomposed: every check is against an unbounded halo
        assert_eq!(proof.min_margin, None, "{alg:?}");
    }
}

#[test]
fn grouped_ca_schedule_consumes_its_deep_halo_exactly() {
    let c = cfg();
    let pg = ProcessGrid::yz(16, 8).unwrap();
    let (g, fuse, _) = ca_group_size(&c, &pg);
    assert!(g >= 3 && fuse, "expected a fused grouped schedule");
    let proof = dataflow::check(&c, AlgKind::CommAvoiding, CaMode::Grouped, &pg).unwrap();
    // some read consumes the shipped depth exactly — no wasted halo layers
    assert_eq!(proof.min_margin, Some(0));
    assert!(proof.collectives_consumed > 0);
}

/// The bugfix satellite: the dataflow pass independently agrees with
/// `analysis::ca_group_size` at every feasible p — the selected group size
/// proves, and every larger candidate the clamp rejected is refuted.  This
/// catches the block-too-small clamp path that count certification alone
/// cannot distinguish.
#[test]
fn agrees_with_ca_group_size_at_every_feasible_p() {
    let c = cfg();
    let m = c.m_iters;
    for p in rank_sweep() {
        for pg in feasible_yz(&c, p) {
            let (g, fuse, ga) = ca_group_size(&c, &pg);
            let ops = schedule::alg2_step_for(&c, &pg, g, fuse, ga);
            dataflow::check_ops(&c, &pg, &ops)
                .unwrap_or_else(|ce| panic!("selected (g={g}, fuse={fuse}) p={p} {pg:?}: {ce}"));
            // every candidate ca_group_size tried and rejected before
            // settling on (g, fuse) must fail the dataflow proof
            let mut ladder: Vec<(usize, bool)> = Vec::new();
            for k in (1..=m).rev() {
                ladder.push((3 * k, true));
                ladder.push((3 * k, false));
            }
            ladder.push((1, true));
            let selected = ladder
                .iter()
                .position(|&(lg, lf)| (lg, lf) == (g, fuse))
                .unwrap_or(ladder.len());
            for &(lg, lf) in &ladder[..selected] {
                let over = schedule::alg2_step_for(&c, &pg, lg, lf, ga);
                let ce = dataflow::check_ops(&c, &pg, &over).expect_err(&format!(
                    "rejected candidate (g={lg}, fuse={lf}) wrongly proves at p={p} {pg:?}"
                ));
                assert_eq!(ce.kind, FailureKind::UncoveredHalo);
                assert!(!ce.field.is_empty());
                assert!(ce.needed > ce.have, "{ce}");
            }
        }
    }
}

#[test]
fn shrunk_deep_halo_yields_named_counterexample() {
    let c = cfg();
    let pg = ProcessGrid::yz(16, 8).unwrap();
    let (_, fuse, _) = ca_group_size(&c, &pg);
    assert!(fuse, "first exchange must be the deep fused one");
    // shrink y by one layer: the later smoothing's ±2 rows fall off
    let mut ops = schedule::alg2_step(&c, &pg, CaMode::Grouped);
    assert!(dataflow::shrink_exchange(&mut ops, 0, 1, 0));
    let ce = dataflow::check_ops(&c, &pg, &ops).expect_err("shrunk y halo must fail");
    assert_eq!(ce.kind, FailureKind::UncoveredHalo);
    assert_eq!(ce.axis, Axis::Y);
    assert!(ce.needed == ce.have + 1, "{ce}");
    assert!(ce.operator.contains("smooth") || ce.operator.contains("adaptation"));
    let msg = format!("{ce}");
    assert!(msg.contains(ce.field), "message names the field: {msg}");

    // shrink z by one layer: the first sub-update's g_w interface read
    // outruns the halo
    let mut ops = schedule::alg2_step(&c, &pg, CaMode::Grouped);
    assert!(dataflow::shrink_exchange(&mut ops, 0, 0, 1));
    let ce = dataflow::check_ops(&c, &pg, &ops).expect_err("shrunk z halo must fail");
    assert_eq!(ce.kind, FailureKind::UncoveredHalo);
    assert_eq!(ce.axis, Axis::Z);
    // the later smoothing's frame also dilates g levels in z, so it (or
    // the first adaptation sub-update) trips first
    assert!(
        ce.operator.contains("smooth") || ce.operator.contains("adaptation"),
        "{ce}"
    );
}

#[test]
fn over_fused_group_yields_counterexample() {
    let c = cfg();
    // bz = 26/8 = 3 clamps g to 3; force a 6-sweep group anyway
    let pg = ProcessGrid::yz(16, 8).unwrap();
    let (g, _, ga) = ca_group_size(&c, &pg);
    assert_eq!(g, 3);
    let ops = schedule::alg2_step_for(&c, &pg, 6, true, ga);
    let ce = dataflow::check_ops(&c, &pg, &ops).expect_err("over-fused group must fail");
    assert_eq!(ce.kind, FailureKind::UncoveredHalo);
    assert_eq!(ce.axis, Axis::Z, "{ce}");
    assert!(ce.needed > ce.have);

    // without fused smoothing the first uncovered read is the adaptation
    // sweep itself, dilated past the z block
    let ops = schedule::alg2_step_for(&c, &pg, 6, false, ga);
    let ce = dataflow::check_ops(&c, &pg, &ops).expect_err("over-fused group must fail");
    assert_eq!(ce.kind, FailureKind::UncoveredHalo);
    assert_eq!(ce.axis, Axis::Z, "{ce}");
    assert!(ce.operator.contains("adaptation"), "{ce}");
    assert!(ce.needed > ce.have);
}

#[test]
fn dropped_collective_with_live_reads_yields_counterexample() {
    let c = cfg();
    let pg = ProcessGrid::yz(16, 8).unwrap();
    let mut ops = schedule::alg2_step(&c, &pg, CaMode::Grouped);
    assert!(dataflow::drop_collective(&mut ops, 0));
    let ce = dataflow::check_ops(&c, &pg, &ops).expect_err("dropped collective must fail");
    assert_eq!(ce.kind, FailureKind::MissingCollective);
    assert!(ce.operator.contains("vertical.C"), "{ce}");
    assert!(!ce.field.is_empty());
    let msg = format!("{ce}");
    assert!(msg.contains("z-allgather"), "{msg}");

    // Algorithm 1 runs C fresh in every sub-update: same detection
    let mut ops = schedule::alg1_step(&c, &pg);
    assert!(dataflow::drop_collective(&mut ops, 0));
    let ce = dataflow::check_ops(&c, &pg, &ops).expect_err("alg1 dropped collective");
    assert_eq!(ce.kind, FailureKind::MissingCollective);
}

#[test]
fn all_collectives_are_consumed_by_fresh_c_runs() {
    let c = cfg();
    let pg = ProcessGrid::yz(16, 8).unwrap();
    for (alg, expect) in [
        (AlgKind::OriginalYZ, 3 * c.m_iters),
        (AlgKind::CommAvoiding, 2 * c.m_iters),
    ] {
        let ops = match alg {
            AlgKind::CommAvoiding => schedule::alg2_step(&c, &pg, CaMode::Grouped),
            _ => schedule::alg1_step(&c, &pg),
        };
        let n_allgathers = ops
            .iter()
            .filter(|o| matches!(o, StepOp::ZAllgather))
            .count();
        let proof = dataflow::check_ops(&c, &pg, &ops).unwrap();
        assert_eq!(proof.collectives_consumed, n_allgathers, "{alg:?}");
        assert_eq!(proof.collectives_consumed, expect, "{alg:?}");
    }
}
