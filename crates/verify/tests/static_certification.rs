//! The headline certification: at every paper rank count the Y-Z schedules
//! of both algorithms are fully matched, deadlock-free, and their counts
//! equal the §5.3 closed forms — all statically, no threads spawned.

use agcm_core::analysis::{AlgKind, CaMode};
use agcm_core::ModelConfig;
use agcm_mesh::ProcessGrid;
use agcm_verify::{
    certify_yz, check_deadlock, check_matching, paper_yz_grid, ScheduleGraph, PAPER_RANKS,
};

#[test]
fn paper_mesh_certifies_at_every_paper_rank_count() {
    let cfg = ModelConfig::paper_50km();
    let m = cfg.m_iters as u64;
    for &p in &PAPER_RANKS {
        let cert = certify_yz(&cfg, paper_yz_grid(p)).unwrap_or_else(|e| {
            panic!("certification failed at p = {p}: {e}");
        });
        assert_eq!(cert.p, p);
        // the paper's 13 -> 2 exchange-frequency claim, machine-checked
        assert_eq!(cert.alg1.exchanges, 3 * m + 4, "p = {p}");
        assert_eq!(cert.alg1.exchanges, 13, "paper mesh has M = 3");
        assert_eq!(cert.ca_ideal.exchanges, 2, "p = {p}");
        // one third of the vertical collectives removed: 3M -> 2M
        assert_eq!(cert.alg1.collectives, 3 * m, "p = {p}");
        assert_eq!(cert.ca_ideal.collectives, 2 * m, "p = {p}");
        // the executable (clamped-group) schedule is also certified; at
        // paper scale blocks are thin, so it degrades toward Algorithm 1's
        // frequency but never exceeds it
        assert!(
            cert.ca_grouped.exchanges <= cert.alg1.exchanges + 1,
            "p = {p}"
        );
    }
}

#[test]
fn certification_rejects_xy_grids() {
    let cfg = ModelConfig::test_medium();
    let g = ProcessGrid::xy(2, 2).unwrap();
    assert!(certify_yz(&cfg, g).is_err());
}

#[test]
fn xy_schedule_is_matched_and_deadlock_free() {
    let cfg = ModelConfig::test_medium();
    let g = ProcessGrid::xy(2, 2).unwrap();
    let graph = ScheduleGraph::extract(&cfg, AlgKind::OriginalXY, CaMode::Grouped, g).unwrap();
    assert!(check_matching(&graph).is_ok());
    assert!(check_deadlock(&graph).is_free());
    // X-Y pays 2 transposes around every filtered sub-update: 2(3M+3)
    let m = cfg.m_iters as u64;
    assert_eq!(graph.collective_ops(), 2 * (3 * m + 3));
    assert_eq!(graph.exchange_ops(), 3 * m + 4);
}

#[test]
fn deadlock_analysis_scales_to_4096_ranks() {
    // ISSUE requirement: the deadlock analysis must work for any p up to
    // 4096 — statically, in one pass, without spawning threads.
    let cfg = ModelConfig::paper_50km();
    let pgrid = ProcessGrid::yz(256, 16).unwrap();
    assert_eq!(pgrid.size(), 4096);
    for (alg, mode) in [
        (AlgKind::OriginalYZ, CaMode::Grouped),
        (AlgKind::CommAvoiding, CaMode::PaperIdeal),
    ] {
        let g = ScheduleGraph::extract(&cfg, alg, mode, pgrid).unwrap();
        let m = check_matching(&g);
        assert!(m.is_ok(), "{alg:?} at p=4096: {:?}", m.errors.first());
        let d = check_deadlock(&g);
        assert!(d.is_free(), "{alg:?} at p=4096: {d:?}");
    }
}

#[test]
fn serial_schedule_is_empty() {
    let cfg = ModelConfig::test_small();
    let g = ScheduleGraph::extract(
        &cfg,
        AlgKind::CommAvoiding,
        CaMode::Grouped,
        ProcessGrid::serial(),
    )
    .unwrap();
    assert!(g.sends.is_empty());
    assert!(g.groups.is_empty());
    assert!(check_matching(&g).is_ok());
    assert!(check_deadlock(&g).is_free());
}
