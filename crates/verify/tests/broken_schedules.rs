//! Negative tests: each analysis must *reject* a deliberately broken
//! schedule.  A verifier that cannot fail is not evidence.

use agcm_core::analysis::{AlgKind, CaMode};
use agcm_core::ModelConfig;
use agcm_mesh::ProcessGrid;
use agcm_verify::{certify_counts, check_deadlock, check_matching, DeadlockReport, ScheduleGraph};

fn yz22() -> (ModelConfig, ProcessGrid) {
    (ModelConfig::test_medium(), ProcessGrid::yz(2, 2).unwrap())
}

fn extract(alg: AlgKind) -> (ModelConfig, ProcessGrid, ScheduleGraph) {
    let (cfg, pg) = yz22();
    let g = ScheduleGraph::extract(&cfg, alg, CaMode::Grouped, pg).unwrap();
    (cfg, pg, g)
}

#[test]
fn intact_schedules_pass_every_analysis() {
    for alg in [AlgKind::OriginalYZ, AlgKind::CommAvoiding] {
        let (cfg, pg, g) = extract(alg);
        assert!(check_matching(&g).is_ok(), "{alg:?}");
        assert!(check_deadlock(&g).is_free(), "{alg:?}");
        let c = certify_counts(&cfg, alg, CaMode::Grouped, pg, &g);
        assert!(c.is_ok(), "{alg:?}: {:?}", c.errors);
    }
}

#[test]
fn mismatched_tag_is_rejected_by_matching_and_deadlock() {
    let (_, _, mut g) = extract(AlgKind::CommAvoiding);
    assert!(g.retag_send(0, 0, 0x4));
    let m = check_matching(&g);
    assert!(!m.is_ok());
    assert!(m.orphan_sends >= 1, "retag must strand the send");
    assert!(m.orphan_recvs >= 1, "…and its intended receive");
    // the receiver now waits forever for the original tag
    let d = check_deadlock(&g);
    assert!(!d.is_free(), "retagged schedule must get stuck");
    if let DeadlockReport::Stuck { blocked, .. } = d {
        assert!(!blocked.is_empty());
    }
}

#[test]
fn dropped_recv_is_rejected_by_matching_and_counts() {
    let (cfg, pg, mut g) = extract(AlgKind::OriginalYZ);
    assert!(g.drop_recv(1, 2));
    let m = check_matching(&g);
    assert!(!m.is_ok());
    assert_eq!(m.orphan_sends, 1, "exactly the unreceived message");
    // count certification sees the send/recv asymmetry on rank 1
    let c = certify_counts(&cfg, AlgKind::OriginalYZ, CaMode::Grouped, pg, &g);
    assert!(!c.is_ok());
    assert!(c.errors.iter().any(|e| e.contains("asymmetric")
        || e.contains("!= predictor")
        || e.contains("recv count")));
    // an orphan *buffered* send does not block anyone: still deadlock-free,
    // which is exactly why matching is a separate analysis
    assert!(check_deadlock(&g).is_free());
}

#[test]
fn recv_before_send_reordering_deadlocks_with_cycle() {
    let (_, _, mut g) = extract(AlgKind::CommAvoiding);
    // first op of the steady-state CA step is the deep halo exchange
    g.recvs_before_sends(0);
    // matching is order-insensitive: the events still pair up
    assert!(check_matching(&g).is_ok());
    // …but the virtual execution exhibits head-of-line blocking
    match check_deadlock(&g) {
        DeadlockReport::Free { .. } => panic!("recv-first schedule must deadlock"),
        DeadlockReport::Stuck { blocked, cycle, .. } => {
            assert!(!blocked.is_empty());
            let cycle = cycle.expect("all-blocked recv ring must contain a wait-for cycle");
            assert!(cycle.len() >= 2, "cycle {cycle:?}");
        }
    }
}

#[test]
fn collective_order_mismatch_deadlocks() {
    let (_, _, mut g) = extract(AlgKind::OriginalYZ);
    // rank 0 enters its 2nd allgather before its 1st; its z-partner does
    // the opposite — neither barrier can ever complete
    assert!(g.swap_barriers(0));
    let d = check_deadlock(&g);
    assert!(!d.is_free(), "swapped collectives must get stuck: {d:?}");
}

#[test]
fn mutations_report_out_of_range_targets() {
    let (_, _, mut g) = extract(AlgKind::OriginalYZ);
    assert!(!g.retag_send(0, 10_000, 0x4));
    assert!(!g.drop_recv(0, 10_000));
}
