//! Analysis 4 at small rank counts: the static schedule graph must predict
//! the executing runtime's measured traffic message-for-message.

use agcm_core::analysis::AlgKind;
use agcm_core::ModelConfig;
use agcm_mesh::ProcessGrid;
use agcm_verify::cross_check;

#[test]
fn static_counts_match_measured_traffic_yz() {
    let cfg = ModelConfig::test_medium();
    let pg = ProcessGrid::yz(2, 2).unwrap();
    for alg in [AlgKind::OriginalYZ, AlgKind::CommAvoiding] {
        cross_check(&cfg, alg, pg).unwrap_or_else(|e| panic!("{alg:?}: {e}"));
    }
}

#[test]
fn static_counts_match_measured_traffic_xy() {
    let cfg = ModelConfig::test_medium();
    let pg = ProcessGrid::xy(2, 2).unwrap();
    cross_check(&cfg, AlgKind::OriginalXY, pg).unwrap_or_else(|e| panic!("OriginalXY: {e}"));
}

#[test]
fn static_counts_match_measured_traffic_tall_z() {
    // pz = 4 exercises interior z-ranks (no top/surface boundary on either
    // side) and z-diagonal links
    let cfg = ModelConfig::test_medium();
    let pg = ProcessGrid::yz(2, 4).unwrap();
    for alg in [AlgKind::OriginalYZ, AlgKind::CommAvoiding] {
        cross_check(&cfg, alg, pg).unwrap_or_else(|e| panic!("{alg:?}: {e}"));
    }
}
