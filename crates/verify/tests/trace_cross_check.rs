//! The trace stream of an executing step equals the static schedule.

use agcm_core::analysis::AlgKind;
use agcm_core::ModelConfig;
use agcm_mesh::ProcessGrid;

fn cfg_for_ca() -> ModelConfig {
    let mut cfg = ModelConfig::test_medium();
    cfg.m_iters = 1; // deep halo fits the 2x2 blocks
    cfg
}

#[test]
fn alg1_trace_matches_schedule_at_p4() {
    let cfg = ModelConfig::test_medium();
    let pg = ProcessGrid::yz(2, 2).unwrap();
    let counts = agcm_verify::trace_cross_check(&cfg, AlgKind::OriginalYZ, pg)
        .expect("trace must match the static schedule");
    let want = agcm_verify::expected_counts(&cfg, AlgKind::OriginalYZ, pg);
    // the paper's 3M + 4 = 13 exchanges, 3M = 9 z-collectives at p_z = 2
    assert_eq!(want.exchanges, 3 * cfg.m_iters as u64 + 4);
    assert_eq!(want.z_allgathers, 3 * cfg.m_iters as u64);
    for c in &counts {
        assert_eq!(c.exchange_waits, want.exchanges);
        assert_eq!(c.c_collectives, want.z_allgathers);
    }
}

#[test]
fn alg2_trace_matches_schedule_at_p4() {
    let cfg = cfg_for_ca();
    let pg = ProcessGrid::yz(2, 2).unwrap();
    let counts = agcm_verify::trace_cross_check(&cfg, AlgKind::CommAvoiding, pg)
        .expect("trace must match the static schedule");
    let want = agcm_verify::expected_counts(&cfg, AlgKind::CommAvoiding, pg);
    // the paper's 13 -> 2 exchanges and 3M -> 2M vertical collectives
    assert_eq!(want.exchanges, 2);
    assert_eq!(want.z_allgathers, 2 * cfg.m_iters as u64);
    for c in &counts {
        assert_eq!(c.exchange_waits, want.exchanges);
        assert_eq!(c.c_collectives, want.z_allgathers);
    }
}
