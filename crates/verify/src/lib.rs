//! `agcm-verify` — static analysis of the dynamical core's communication
//! schedules.
//!
//! The paper's argument is a statement about *communication structure*:
//! how many halo exchanges and collectives one time step performs, with
//! which tags, volumes and partners (§4.3, §5.3).  This crate extracts
//! that structure **statically** — from the schedule metadata the
//! integrators export ([`agcm_core::par::schedule`]) and the same halo
//! geometry they execute ([`agcm_mesh::ExchangePlan`]) — and proves it
//! well-formed at production scale (p = 1024, 4096, …) without spawning a
//! single thread:
//!
//! 1. **Matching** ([`matching::check_matching`]): every send has exactly
//!    one receive with identical `(source, tag)` and size; no orphans.
//! 2. **Deadlock-freedom** ([`deadlock::check_deadlock`]): virtual
//!    execution of every rank's program under the runtime's eager-send
//!    semantics either completes — a proof — or exhibits the wait-for
//!    cycle, replacing "the 30 s timeout did not fire" as evidence.
//! 3. **Count certification** ([`counts::certify_counts`]): graph counts
//!    equal `core::analysis`'s independent per-rank predictor and the
//!    §5.3 closed forms — 13 → 2 exchanges and the 3M → 2M collective
//!    reduction become machine-checked assertions.
//! 4. **Runtime cross-check** ([`runtime::cross_check`]): at small p the
//!    same counts equal the traffic a real thread-backed run measures.
//! 5. **Trace cross-check** ([`trace::trace_cross_check`]): the span
//!    stream `agcm-obs` records from inside an executing step — one
//!    `ExchangeWait` span per exchange, one phase-`C` `Collective` span
//!    per z-allgather — also equals the schedule, pinning the
//!    *instrumentation* (which the figures' trace exporter consumes) to
//!    the same ground truth.
//!
//! 6. **Critical-path attribution** ([`critpath::analyze`]): a merged,
//!    clock-aligned multi-process trace is joined span-by-span against the
//!    static graph, naming per step the blocking (rank, op, event) chain
//!    and producing the measured exchange samples the α–β–γ fitter
//!    ([`agcm_comm::fit`]) regresses.
//!
//! [`report::certify_yz`] bundles the static analyses;
//! `cargo run -p agcm-bench --bin figures -- verify` prints the paper-mesh
//! certification table.

#![forbid(unsafe_code)]
pub mod counts;
pub mod critpath;
pub mod dataflow;
pub mod deadlock;
pub mod graph;
pub mod matching;
pub mod report;
pub mod runtime;
pub mod trace;

pub use counts::{certify_counts, rank_counts, CountReport, RankCounts};
pub use critpath::{
    analyze, CriticalPathReport, SegmentBreakdown, SpanAttribution, StepCriticalPath,
};
pub use dataflow::{check_ops, Counterexample, FailureKind, FlowProof};
pub use deadlock::{check_deadlock, DeadlockReport};
pub use graph::{Action, RecvEvent, ScheduleGraph, SendEvent};
pub use matching::{check_matching, MatchReport};
pub use report::{
    certify_paper_ranks, certify_yz, paper_yz_grid, AlgCertification, Certification, PAPER_RANKS,
};
pub use runtime::{cross_check, measure_step, measure_step_under_faults, MeasuredTraffic};
pub use trace::{
    expected_counts, measure_spans, trace_cross_check, ExpectedSpanCounts, RankSpanCounts,
};
