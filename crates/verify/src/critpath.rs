//! Analysis 6 — critical-path attribution of a merged distributed trace.
//!
//! Given the merged, clock-aligned span stream of a multi-process run
//! (`agcm_obs::dist::merge_events`) and the statically extracted
//! [`ScheduleGraph`] of the same configuration, this module answers the
//! question per-process tracing cannot: *which rank's which operation made
//! the step take as long as it did*.
//!
//! The join is order-based, the same invariant the trace cross-check
//! ([`crate::trace`]) certifies: within one (rank, step) the `i`-th
//! `ExchangeWait` span is the `i`-th `Exchange` op of the schedule, and
//! the `i`-th phase-`C` `Collective` span is the `i`-th `ZAllgather` op —
//! SPMD programs issue their communication in program order, and the span
//! sequence numbers preserve it.  Count mismatches are reported as join
//! errors, not papered over, so a trace inconsistent with the schedule is
//! loud.
//!
//! Per step the analyzer finds the **critical rank** — the one whose step
//! span ends last on the aligned clock — and attributes its wall time to
//! compute (`Op`), pack (`ExchangePost`), wire wait (`ExchangeWait`) and
//! collective segments, naming the longest blocking spans as
//! (rank, op, event) entries joined back to schedule ops.  It also
//! extracts per-exchange [`agcm_comm::ExchangeSample`]s (messages and
//! bytes from the schedule, seconds from the post+wait spans) — the input
//! the α–β–γ fitter regresses.

use crate::graph::ScheduleGraph;
use agcm_comm::ExchangeSample;
use agcm_core::par::schedule::StepOp;
use agcm_obs::{Event, Phase, SpanKind};
use std::collections::BTreeMap;

/// One span attributed to a schedule op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanAttribution {
    /// Rank the span ran on.
    pub rank: usize,
    /// Index into [`ScheduleGraph::ops`] (`u32::MAX` when the span has no
    /// schedule counterpart).
    pub op: u32,
    /// Human-readable op label (`"exchange:state"`, `"z-allgather"`, …).
    pub op_label: String,
    /// Span site name (`"halo.wait"`, `"allgather"`, …).
    pub name: &'static str,
    /// Aligned start time (ns).
    pub t0_ns: u64,
    /// Span duration (ns).
    pub dur_ns: u64,
    /// Payload bytes the span moved.
    pub bytes: u64,
}

/// Where one step's critical-rank wall time went.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SegmentBreakdown {
    /// Operator (`Op`) span time (ns).
    pub compute_ns: u64,
    /// Halo pack/post time (ns).
    pub pack_ns: u64,
    /// Exchange wait (wire) time (ns).
    pub wire_wait_ns: u64,
    /// Collective time (ns).
    pub collective_ns: u64,
}

/// Critical path of one time step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepCriticalPath {
    /// Time step.
    pub step: u64,
    /// Wall time from the earliest rank's step start to the latest rank's
    /// step end on the aligned clock (ns).
    pub makespan_ns: u64,
    /// The rank whose step span ended last.
    pub critical_rank: usize,
    /// The critical rank's own step wall time (ns).
    pub critical_wall_ns: u64,
    /// Segment attribution on the critical rank.
    pub breakdown: SegmentBreakdown,
    /// Blocking chain: the critical rank's wait/collective spans, longest
    /// first, joined to schedule ops.
    pub blocking: Vec<SpanAttribution>,
}

/// The full critical-path analysis of a merged trace.
#[derive(Debug, Clone, Default)]
pub struct CriticalPathReport {
    /// Per-step critical paths, ascending by step.
    pub steps: Vec<StepCriticalPath>,
    /// Per-exchange samples for the cost-model fitter.
    pub samples: Vec<ExchangeSample>,
    /// Spans successfully joined to schedule ops.
    pub joined: usize,
    /// Join inconsistencies (span counts deviating from the schedule).
    pub errors: Vec<String>,
}

impl CriticalPathReport {
    /// Whether every joined span matched the schedule.
    pub fn is_consistent(&self) -> bool {
        self.errors.is_empty()
    }
}

fn op_label(op: &StepOp) -> String {
    match op {
        StepOp::Exchange(ex) => format!("exchange:{}", ex.label),
        StepOp::ZAllgather => "z-allgather".to_string(),
        StepOp::FilterTranspose => "filter-transpose".to_string(),
        StepOp::Compute(_) => "compute".to_string(),
    }
}

/// Analyze the merged span stream `events` against `graph`.
///
/// `events` may span several steps; each is analyzed independently.
/// Steps without a `Step` span on every rank (warm-up partials) are
/// skipped.  The stream must already be clock-aligned
/// ([`agcm_obs::dist::merge_events`]) — attribution compares timestamps
/// across ranks.
pub fn analyze(events: &[Event], graph: &ScheduleGraph) -> CriticalPathReport {
    let mut rep = CriticalPathReport::default();

    // schedule-side join targets
    let exchange_ops: Vec<u32> = graph
        .ops
        .iter()
        .enumerate()
        .filter(|(_, o)| matches!(o, StepOp::Exchange(_)))
        .map(|(i, _)| i as u32)
        .collect();
    let zallgather_ops: Vec<u32> = graph
        .ops
        .iter()
        .enumerate()
        .filter(|(_, o)| matches!(o, StepOp::ZAllgather))
        .map(|(i, _)| i as u32)
        .collect();
    // per (rank, op): messages and payload elems the schedule says the
    // rank receives in that op
    let mut recv_traffic: BTreeMap<(usize, u32), (u64, u64)> = BTreeMap::new();
    for r in &graph.recvs {
        let e = recv_traffic
            .entry((r.rank as usize, r.op))
            .or_insert((0, 0));
        e.0 += 1;
        e.1 += r.elems;
    }

    // bucket spans per (step, rank)
    type Key = (u64, usize);
    let mut steps: BTreeMap<u64, ()> = BTreeMap::new();
    let mut step_spans: BTreeMap<Key, (u64, u64)> = BTreeMap::new(); // t0, t1
    let mut waits: BTreeMap<Key, Vec<&Event>> = BTreeMap::new();
    let mut posts: BTreeMap<Key, Vec<&Event>> = BTreeMap::new();
    let mut colls_c: BTreeMap<Key, Vec<&Event>> = BTreeMap::new();
    let mut agg: BTreeMap<Key, SegmentBreakdown> = BTreeMap::new();
    for e in events {
        let key = (e.step, e.rank);
        match e.kind {
            SpanKind::Step => {
                steps.insert(e.step, ());
                let s = step_spans.entry(key).or_insert((e.t0_ns, e.t1_ns));
                s.0 = s.0.min(e.t0_ns);
                s.1 = s.1.max(e.t1_ns);
            }
            SpanKind::Op => agg.entry(key).or_default().compute_ns += e.dur_ns(),
            SpanKind::ExchangePost => {
                agg.entry(key).or_default().pack_ns += e.dur_ns();
                posts.entry(key).or_default().push(e);
            }
            SpanKind::ExchangeWait => {
                agg.entry(key).or_default().wire_wait_ns += e.dur_ns();
                waits.entry(key).or_default().push(e);
            }
            SpanKind::Collective => {
                agg.entry(key).or_default().collective_ns += e.dur_ns();
                if e.phase == Phase::C {
                    colls_c.entry(key).or_default().push(e);
                }
            }
            _ => {}
        }
    }
    for v in waits
        .values_mut()
        .chain(posts.values_mut())
        .chain(colls_c.values_mut())
    {
        v.sort_by_key(|e| e.seq);
    }

    // join + samples per (step, rank)
    let mut joins: BTreeMap<Key, Vec<SpanAttribution>> = BTreeMap::new();
    for (&(step, rank), rank_waits) in &waits {
        if rank_waits.len() != exchange_ops.len() {
            rep.errors.push(format!(
                "step {step} rank {rank}: {} exchange-wait spans vs {} scheduled exchanges",
                rank_waits.len(),
                exchange_ops.len()
            ));
        }
        let rank_posts = posts.get(&(step, rank)).map(Vec::as_slice).unwrap_or(&[]);
        for (i, w) in rank_waits.iter().enumerate() {
            let op = exchange_ops.get(i).copied().unwrap_or(u32::MAX);
            let label = graph
                .ops
                .get(op as usize)
                .map(op_label)
                .unwrap_or_else(|| "unmatched".to_string());
            joins
                .entry((step, rank))
                .or_default()
                .push(SpanAttribution {
                    rank,
                    op,
                    op_label: label,
                    name: w.name,
                    t0_ns: w.t0_ns,
                    dur_ns: w.dur_ns(),
                    bytes: w.bytes,
                });
            if op != u32::MAX {
                rep.joined += 1;
                let (msgs, elems) = recv_traffic.get(&(rank, op)).copied().unwrap_or((0, 0));
                // round time: the posting span plus the blocking wait;
                // payload bytes from the schedule (the ground truth the
                // wire identity is certified against)
                let post_ns = rank_posts.get(i).map(|p| p.dur_ns()).unwrap_or(0);
                rep.samples.push(ExchangeSample {
                    op,
                    name: w.name,
                    msgs,
                    bytes: 8 * elems,
                    seconds: (post_ns + w.dur_ns()) as f64 * 1e-9,
                });
            }
        }
    }
    for (&(step, rank), rank_colls) in &colls_c {
        if rank_colls.len() != zallgather_ops.len() {
            rep.errors.push(format!(
                "step {step} rank {rank}: {} C-collective spans vs {} scheduled z-allgathers",
                rank_colls.len(),
                zallgather_ops.len()
            ));
        }
        for (i, c) in rank_colls.iter().enumerate() {
            let op = zallgather_ops.get(i).copied().unwrap_or(u32::MAX);
            let label = graph
                .ops
                .get(op as usize)
                .map(op_label)
                .unwrap_or_else(|| "unmatched".to_string());
            if op != u32::MAX {
                rep.joined += 1;
            }
            joins
                .entry((step, rank))
                .or_default()
                .push(SpanAttribution {
                    rank,
                    op,
                    op_label: label,
                    name: c.name,
                    t0_ns: c.t0_ns,
                    dur_ns: c.dur_ns(),
                    bytes: c.bytes,
                });
        }
    }

    // per-step critical path
    for (&step, ()) in &steps {
        let on_step: Vec<(usize, (u64, u64))> = step_spans
            .range((step, 0)..=(step, usize::MAX))
            .map(|(&(_, rank), &span)| (rank, span))
            .collect();
        if on_step.len() < graph.p {
            continue; // partial step (warm-up boundary): skip
        }
        let t_start = on_step.iter().map(|(_, (t0, _))| *t0).min().unwrap_or(0);
        let (critical_rank, (c_t0, c_t1)) = on_step
            .iter()
            .max_by_key(|(_, (_, t1))| *t1)
            .copied()
            .unwrap_or((0, (0, 0)));
        let mut blocking = joins.remove(&(step, critical_rank)).unwrap_or_default();
        blocking.sort_by_key(|a| std::cmp::Reverse(a.dur_ns));
        rep.steps.push(StepCriticalPath {
            step,
            makespan_ns: c_t1.saturating_sub(t_start),
            critical_rank,
            critical_wall_ns: c_t1.saturating_sub(c_t0),
            breakdown: agg.get(&(step, critical_rank)).copied().unwrap_or_default(),
            blocking,
        });
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use agcm_core::analysis::{AlgKind, CaMode};
    use agcm_core::ModelConfig;
    use agcm_mesh::ProcessGrid;

    #[allow(clippy::too_many_arguments)]
    fn ev(
        rank: usize,
        step: u64,
        kind: SpanKind,
        phase: Phase,
        name: &'static str,
        t0: u64,
        t1: u64,
        seq: u64,
    ) -> Event {
        Event {
            rank,
            step,
            kind,
            phase,
            name,
            t0_ns: t0,
            t1_ns: t1,
            seq,
            bytes: 0,
            value: 0.0,
        }
    }

    fn graph() -> ScheduleGraph {
        let cfg = ModelConfig::test_small();
        ScheduleGraph::extract(
            &cfg,
            AlgKind::CommAvoiding,
            CaMode::Grouped,
            ProcessGrid::new(1, 2, 1).expect("grid"),
        )
        .expect("graph")
    }

    #[test]
    fn synthetic_trace_attributes_critical_rank() {
        let g = graph();
        let n_ex = g.exchange_ops() as usize;
        let mut events = Vec::new();
        let mut seq = 0;
        for rank in 0..2usize {
            // rank 1 is slower: its step span ends later
            let stretch = 1 + rank as u64;
            events.push(ev(
                rank,
                1,
                SpanKind::Step,
                Phase::Other,
                "alg2.step",
                0,
                1_000 * stretch,
                seq,
            ));
            seq += 1;
            let mut t = 10;
            for _ in 0..n_ex {
                events.push(ev(
                    rank,
                    1,
                    SpanKind::ExchangePost,
                    Phase::Other,
                    "halo.post",
                    t,
                    t + 5,
                    seq,
                ));
                seq += 1;
                events.push(ev(
                    rank,
                    1,
                    SpanKind::ExchangeWait,
                    Phase::Other,
                    "halo.wait",
                    t + 5,
                    t + 5 + 40 * stretch,
                    seq,
                ));
                seq += 1;
                t += 100;
            }
            events.push(ev(
                rank,
                1,
                SpanKind::Op,
                Phase::A,
                "adaptation.local",
                500,
                700,
                seq,
            ));
            seq += 1;
        }
        let rep = analyze(&events, &g);
        assert!(rep.is_consistent(), "errors: {:?}", rep.errors);
        assert_eq!(rep.joined, 2 * n_ex);
        assert_eq!(rep.steps.len(), 1);
        let s = &rep.steps[0];
        assert_eq!(s.critical_rank, 1);
        assert_eq!(s.makespan_ns, 2_000);
        assert_eq!(s.breakdown.compute_ns, 200);
        assert_eq!(s.breakdown.pack_ns, 5 * n_ex as u64);
        assert_eq!(s.breakdown.wire_wait_ns, 80 * n_ex as u64);
        // blocking chain: longest waits first, joined to exchange ops
        assert!(!s.blocking.is_empty());
        assert!(s.blocking[0].op_label.starts_with("exchange:"));
        assert!(s.blocking.windows(2).all(|w| w[0].dur_ns >= w[1].dur_ns));
        // fitter samples carry schedule traffic and measured seconds
        assert_eq!(rep.samples.len(), 2 * n_ex);
        for smp in &rep.samples {
            assert!(smp.msgs >= 1, "interior rank must receive messages");
            assert!(smp.bytes > 0);
            assert!(smp.seconds > 0.0);
        }
    }

    #[test]
    fn count_mismatch_is_a_join_error() {
        let g = graph();
        // a single wait span cannot cover the schedule's exchanges
        let events = vec![
            ev(0, 1, SpanKind::Step, Phase::Other, "alg2.step", 0, 100, 0),
            ev(1, 1, SpanKind::Step, Phase::Other, "alg2.step", 0, 110, 1),
            ev(
                0,
                1,
                SpanKind::ExchangeWait,
                Phase::Other,
                "halo.wait",
                10,
                20,
                2,
            ),
        ];
        let rep = analyze(&events, &g);
        assert!(!rep.is_consistent());
        assert!(rep.errors[0].contains("exchange-wait spans"));
    }

    #[test]
    fn partial_steps_are_skipped() {
        let g = graph();
        // only rank 0 has a step span at step 0: no critical path for it
        let events = vec![ev(
            0,
            0,
            SpanKind::Step,
            Phase::Other,
            "alg2.step",
            0,
            100,
            0,
        )];
        let rep = analyze(&events, &g);
        assert!(rep.steps.is_empty());
    }
}
