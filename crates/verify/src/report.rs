//! The full static certification: all three schedules of one rank count,
//! all analyses, plus the paper's headline claims as assertions.

use crate::counts::certify_counts;
use crate::dataflow;
use crate::deadlock::check_deadlock;
use crate::graph::ScheduleGraph;
use crate::matching::check_matching;
use agcm_core::analysis::{self, AlgKind, CaMode};
use agcm_core::ModelConfig;
use agcm_mesh::ProcessGrid;

/// Certification of one algorithm's schedule on one grid.
#[derive(Debug, Clone)]
pub struct AlgCertification {
    /// The algorithm.
    pub alg: AlgKind,
    /// Halo exchanges per step.
    pub exchanges: u64,
    /// Collective calls per rank per step.
    pub collectives: u64,
    /// Send events in the step (all ranks).
    pub sends: usize,
    /// Actions virtually executed by the deadlock proof.
    pub actions: usize,
    /// Read requirements discharged by the dataflow proof
    /// ([`dataflow::check`]); `None` when the schedule is not executable
    /// on this grid (the paper's idealized accounting on a clamped grid)
    /// and only its counts are certified.
    pub dataflow_reads: Option<u64>,
    /// Smallest halo slack the dataflow proof observed (`Some(0)`: some
    /// exchange depth is consumed exactly).
    pub dataflow_margin: Option<u64>,
}

/// Certification of the Y-Z schedules at one rank count.
#[derive(Debug, Clone)]
pub struct Certification {
    /// Ranks.
    pub p: usize,
    /// Algorithm 1 under Y-Z (the 13-exchange schedule).
    pub alg1: AlgCertification,
    /// Algorithm 2 under the paper's idealized full-depth accounting
    /// (the 2-exchange schedule).
    pub ca_ideal: AlgCertification,
    /// Algorithm 2 as executable on this grid (clamped groups).
    pub ca_grouped: AlgCertification,
}

fn certify_one(
    cfg: &ModelConfig,
    alg: AlgKind,
    mode: CaMode,
    pgrid: ProcessGrid,
) -> Result<AlgCertification, String> {
    let label = format!("{alg:?}/{mode:?} p={}", pgrid.size());
    let g = ScheduleGraph::extract(cfg, alg, mode, pgrid)?;
    let m = check_matching(&g);
    if !m.is_ok() {
        return Err(format!(
            "{label}: matching failed ({} orphan sends, {} orphan recvs, {} size mismatches): {}",
            m.orphan_sends,
            m.orphan_recvs,
            m.size_mismatches,
            m.errors.first().cloned().unwrap_or_default()
        ));
    }
    let d = check_deadlock(&g);
    let actions = match d {
        crate::deadlock::DeadlockReport::Free { actions } => actions,
        crate::deadlock::DeadlockReport::Stuck { ref detail, .. } => {
            return Err(format!("{label}: deadlock: {detail}"));
        }
    };
    let c = certify_counts(cfg, alg, mode, pgrid, &g);
    if !c.is_ok() {
        return Err(format!(
            "{label}: count certification failed: {}",
            c.errors.join("; ")
        ));
    }
    // halo-coverage proof for every executable schedule; the paper's
    // idealized accounting is executable only where the grouped schedule
    // reaches the full depth
    let executable = mode == CaMode::Grouped || {
        let (gs, fuse, ga) = analysis::ca_group_size(cfg, &pgrid);
        alg != AlgKind::CommAvoiding || (gs == 3 * cfg.m_iters && fuse && ga == 3)
    };
    let (dataflow_reads, dataflow_margin) = if executable {
        let proof = dataflow::check(cfg, alg, mode, &pgrid)
            .map_err(|ce| format!("{label}: dataflow counterexample: {ce}"))?;
        (Some(proof.reads_checked), proof.min_margin)
    } else {
        (None, None)
    };
    Ok(AlgCertification {
        alg,
        exchanges: c.exchanges,
        collectives: c.collectives,
        sends: g.sends.len(),
        actions,
        dataflow_reads,
        dataflow_margin,
    })
}

/// Statically certify the Y-Z schedules of both algorithms on `pgrid`:
/// fully matched, deadlock-free, counts equal to the predictor and the
/// §5.3 closed forms — including the paper's 13 → 2 exchange-frequency
/// claim and the one-third vertical-collective reduction
/// (`W_YZ / W_CA = 3M / 2M`).
pub fn certify_yz(cfg: &ModelConfig, pgrid: ProcessGrid) -> Result<Certification, String> {
    if pgrid.px() != 1 {
        return Err("certify_yz needs a Y-Z grid".into());
    }
    let p = pgrid.size();
    let alg1 = certify_one(cfg, AlgKind::OriginalYZ, CaMode::Grouped, pgrid)?;
    let ca_ideal = certify_one(cfg, AlgKind::CommAvoiding, CaMode::PaperIdeal, pgrid)?;
    let ca_grouped = certify_one(cfg, AlgKind::CommAvoiding, CaMode::Grouped, pgrid)?;

    let m = cfg.m_iters as u64;
    if alg1.exchanges != 3 * m + 4 {
        return Err(format!(
            "Algorithm 1 has {} exchanges per step, expected 3M+4 = {}",
            alg1.exchanges,
            3 * m + 4
        ));
    }
    if ca_ideal.exchanges != 2 {
        return Err(format!(
            "idealized CA schedule has {} exchanges per step, expected the paper's 2",
            ca_ideal.exchanges
        ));
    }
    // one third of the vertical collectives removed: 3M -> 2M per step,
    // the exact ratio of the §5.3 W_YZ / W_CA closed forms
    if pgrid.pz() > 1 {
        if 2 * alg1.collectives != 3 * ca_ideal.collectives {
            return Err(format!(
                "collective reduction is {} -> {}, expected 3M -> 2M",
                alg1.collectives, ca_ideal.collectives
            ));
        }
        let (py, pz) = (pgrid.py(), pgrid.pz());
        let w_ratio = analysis::w_yz(cfg, py, pz, 1) / analysis::w_ca(cfg, py, pz, 1);
        let c_ratio = alg1.collectives as f64 / ca_ideal.collectives as f64;
        if (w_ratio - c_ratio).abs() > 1e-12 {
            return Err(format!(
                "W_YZ/W_CA = {w_ratio} but the analyzer's collective ratio is {c_ratio}"
            ));
        }
    }
    Ok(Certification {
        p,
        alg1,
        ca_ideal,
        ca_grouped,
    })
}

/// The paper's evaluation rank counts.
pub const PAPER_RANKS: [usize; 4] = [128, 256, 512, 1024];

/// The Y-Z process grid used at a paper rank count (8 z-ranks as in §5.1,
/// falling back to 2 at tiny p) — mirrors `agcm_bench::yz_grid`.
pub fn paper_yz_grid(p: usize) -> ProcessGrid {
    let pz = 8.min(p / 16).max(2);
    ProcessGrid::yz(p / pz, pz).expect("valid Y-Z grid")
}

/// Certify the paper mesh at every paper rank count.
pub fn certify_paper_ranks() -> Result<Vec<Certification>, String> {
    let cfg = ModelConfig::paper_50km();
    PAPER_RANKS
        .iter()
        .map(|&p| certify_yz(&cfg, paper_yz_grid(p)))
        .collect()
}
