//! Analysis 5 — trace cross-check.
//!
//! The span tracer (`agcm-obs`) observes the *executing* integrators from
//! the inside: one `ExchangeWait` span per completed halo exchange, one
//! `Collective` span per collective call (tagged with the operator phase it
//! ran under).  The schedule metadata ([`agcm_core::par::schedule`]) states
//! what one steady-state step *should* perform.  This analysis runs a real
//! thread-backed model for two steps, keeps the second (steady-state) step
//! and compares, per rank:
//!
//! * `ExchangeWait` spans  vs  [`schedule::exchange_count`] — the paper's
//!   `3M + 4` (Algorithm 1) and `2` (Algorithm 2) exchanges per step,
//! * `Collective` spans tagged [`agcm_obs::Phase::C`]  vs  the schedule's
//!   `ZAllgather` count — the §4.2.2 `3M → 2M` vertical-collective cut.
//!
//! Where [`crate::runtime`] pins the static model to the runtime's *byte
//! counters*, this pins it to the *trace stream* — the same stream the
//! Chrome-trace exporter and overlap profile consume — so a span that goes
//! missing (or double-fires) in the instrumentation is caught here.

use agcm_comm::{Communicator, Universe};
use agcm_core::analysis::{AlgKind, CaMode};
use agcm_core::par::{schedule, Alg1Model, CaModel};
use agcm_core::{init, ModelConfig};
use agcm_mesh::ProcessGrid;
use agcm_obs as obs;

/// Span counts of one rank over one steady-state step.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RankSpanCounts {
    /// Rank id.
    pub rank: usize,
    /// `ExchangeWait` spans — one per completed halo exchange.
    pub exchange_waits: u64,
    /// `Collective` spans tagged with operator phase `C` (z-allgathers).
    pub c_collectives: u64,
    /// Operator (`Op`) spans of any phase.
    pub op_spans: u64,
}

/// Expected per-rank counts derived from the static schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpectedSpanCounts {
    /// [`schedule::exchange_count`] of the steady-state step.
    pub exchanges: u64,
    /// `ZAllgather` entries of the schedule (0 when `p_z = 1`).
    pub z_allgathers: u64,
}

/// Static expectation for `alg` on `pgrid` (steady state, grouped CA mode —
/// the mode the executable runs).
pub fn expected_counts(cfg: &ModelConfig, alg: AlgKind, pgrid: ProcessGrid) -> ExpectedSpanCounts {
    let ops = match alg {
        AlgKind::CommAvoiding => schedule::alg2_step(cfg, &pgrid, CaMode::Grouped),
        _ => schedule::alg1_step(cfg, &pgrid),
    };
    ExpectedSpanCounts {
        exchanges: schedule::exchange_count(&ops),
        z_allgathers: ops
            .iter()
            .filter(|o| matches!(o, schedule::StepOp::ZAllgather))
            .count() as u64,
    }
}

/// Run `alg` for real under the tracer and return per-rank span counts of
/// the **second** step (steady state: warm `C` cache, pending smoothing).
///
/// Takes the process-global tracer exclusively for the duration (see
/// [`agcm_obs::exclusive`]); prior buffered events are discarded.  Returns
/// an empty vector when the tracer is compiled out (feature `trace` off).
pub fn measure_spans(cfg: &ModelConfig, alg: AlgKind, pgrid: ProcessGrid) -> Vec<RankSpanCounts> {
    let _guard = obs::exclusive();
    obs::reset();
    obs::enable();
    if !obs::enabled() {
        return Vec::new(); // tracer compiled out
    }
    let p = pgrid.size();
    let cfg = cfg.clone();
    Universe::run(p, move |comm| {
        let mut step: Box<dyn FnMut(&Communicator)> = match alg {
            AlgKind::CommAvoiding => {
                let mut m = CaModel::new(&cfg, pgrid, comm).expect("valid CA model");
                let ic = init::perturbed_rest(m.geom(), 100.0, 1.0, 3);
                m.set_state(&ic);
                Box::new(move |c| m.step(c).expect("step"))
            }
            _ => {
                let mut m = Alg1Model::new(&cfg, pgrid, comm).expect("valid Alg1 model");
                let ic = init::perturbed_rest(m.geom(), 100.0, 1.0, 3);
                m.set_state(&ic);
                Box::new(move |c| m.step(c).expect("step"))
            }
        };
        step(comm); // warm-up: fills caches, leaves a smoothing pending
        step(comm); // the measured steady-state step (step index 1)
    });
    obs::disable();
    let events = obs::drain();
    let mut counts: Vec<RankSpanCounts> = (0..p)
        .map(|rank| RankSpanCounts {
            rank,
            ..Default::default()
        })
        .collect();
    for e in events.iter().filter(|e| e.step == 1) {
        let c = &mut counts[e.rank];
        match e.kind {
            obs::SpanKind::ExchangeWait => c.exchange_waits += 1,
            obs::SpanKind::Collective if e.phase == obs::Phase::C => c.c_collectives += 1,
            obs::SpanKind::Op => c.op_spans += 1,
            _ => {}
        }
    }
    counts
}

/// Compare the trace stream of an executed steady-state step against the
/// static schedule, rank by rank.  `Ok` carries the measured counts;
/// `Err` lists every rank that deviated.  Vacuously `Ok` (empty) when the
/// tracer is compiled out.
pub fn trace_cross_check(
    cfg: &ModelConfig,
    alg: AlgKind,
    pgrid: ProcessGrid,
) -> Result<Vec<RankSpanCounts>, String> {
    let want = expected_counts(cfg, alg, pgrid);
    let meas = measure_spans(cfg, alg, pgrid);
    let mut errors = Vec::new();
    for c in &meas {
        if c.exchange_waits != want.exchanges || c.c_collectives != want.z_allgathers {
            errors.push(format!(
                "rank {}: schedule says {} exchanges, {} z-collectives; \
                 trace shows {} exchange-wait spans, {} C-collective spans",
                c.rank, want.exchanges, want.z_allgathers, c.exchange_waits, c.c_collectives
            ));
        }
        if c.op_spans == 0 {
            errors.push(format!("rank {}: no operator spans recorded", c.rank));
        }
    }
    if errors.is_empty() {
        Ok(meas)
    } else {
        Err(errors.join("\n"))
    }
}
