//! Analysis 3 — count certification.
//!
//! The analyzer's per-rank message/volume/collective counts must equal the
//! independent per-rank predictor of [`agcm_core::analysis`]
//! ([`agcm_core::analysis::predict_rank_mode`]), and the per-step synchronization totals must
//! equal the §5.3 closed forms (`S_YZ = 6M + 4`, `S_CA = 2M + 2`,
//! `S_XY = 9M + 10` per step) — turning the paper's headline claims
//! (13 → 2 stencil exchanges, one third of the vertical collectives
//! removed, `W_YZ / W_CA = 3/2`) into machine-checked assertions.

use crate::graph::ScheduleGraph;
use agcm_comm::CostModel;
use agcm_core::analysis::{self, AlgKind, CaMode};
use agcm_core::ModelConfig;
use agcm_fft::FourierFilter;
use agcm_mesh::{Decomposition, ProcessGrid};

/// Per-rank traffic of one step, summed from the event graph.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RankCounts {
    /// Messages sent.
    pub send_msgs: u64,
    /// `f64` elements sent.
    pub send_elems: u64,
    /// Messages received.
    pub recv_msgs: u64,
    /// `f64` elements received.
    pub recv_elems: u64,
    /// Collective calls entered.
    pub collectives: u64,
}

/// Sum the graph's events per rank.
pub fn rank_counts(g: &ScheduleGraph) -> Vec<RankCounts> {
    let mut out = vec![RankCounts::default(); g.p];
    for s in &g.sends {
        let c = &mut out[s.src as usize];
        c.send_msgs += 1;
        c.send_elems += s.elems;
    }
    for r in &g.recvs {
        if r.dropped {
            continue;
        }
        let c = &mut out[r.rank as usize];
        c.recv_msgs += 1;
        c.recv_elems += r.elems;
    }
    for members in &g.groups {
        for &m in members {
            out[m as usize].collectives += 1;
        }
    }
    out
}

/// Outcome of the count certification.
#[derive(Debug, Clone, Default)]
pub struct CountReport {
    /// Halo exchanges per step.
    pub exchanges: u64,
    /// Collective calls per rank per step.
    pub collectives: u64,
    /// Synchronizations per step (exchanges + collectives): the §5.3 `S`.
    pub syncs: u64,
    /// The §5.3 closed-form `S` for this algorithm.
    pub s_closed_form: u64,
    /// Ranks whose counts were checked against the predictor.
    pub ranks_checked: usize,
    /// Failures (capped).
    pub errors: Vec<String>,
}

impl CountReport {
    /// Whether every count matched.
    pub fn is_ok(&self) -> bool {
        self.errors.is_empty()
    }
}

const MAX_ERRORS: usize = 16;

fn filter_flags(cfg: &ModelConfig) -> Vec<bool> {
    let grid = cfg.grid().expect("valid config");
    let lats: Vec<f64> = (0..grid.ny()).map(|j| grid.latitude(j)).collect();
    let filter = FourierFilter::new(grid.nx(), &lats, cfg.filter_cutoff_deg.to_radians());
    (0..grid.ny()).map(|j| filter.is_active(j)).collect()
}

/// Certify the graph's counts against the §5.3 closed forms and the
/// independent per-rank predictor of `core::analysis`.
pub fn certify_counts(
    cfg: &ModelConfig,
    alg: AlgKind,
    mode: CaMode,
    pgrid: ProcessGrid,
    g: &ScheduleGraph,
) -> CountReport {
    let mut rep = CountReport {
        exchanges: g.exchange_ops(),
        collectives: g.collective_ops(),
        ..CountReport::default()
    };
    rep.syncs = rep.exchanges + rep.collectives;
    fn err(rep: &mut CountReport, msg: String) {
        if rep.errors.len() < MAX_ERRORS {
            rep.errors.push(msg);
        }
    }

    // §5.3 closed form; exact only in the regime the paper states it for
    // (full-depth CA schedule = PaperIdeal or an unclamped Grouped fit).
    let s = match alg {
        AlgKind::OriginalYZ => analysis::s_yz(cfg, 1),
        AlgKind::OriginalXY => analysis::s_xy(cfg, 1),
        AlgKind::CommAvoiding => analysis::s_ca(cfg, 1),
    };
    rep.s_closed_form = s as u64;
    // the closed forms assume the decomposition that motivates them (z
    // collectives under Y-Z, filter transposes under X-Y, full-depth CA)
    let closed_form_applies = match alg {
        AlgKind::OriginalYZ => pgrid.pz() > 1,
        AlgKind::OriginalXY => pgrid.px() > 1,
        AlgKind::CommAvoiding => {
            pgrid.pz() > 1
                && (mode == CaMode::PaperIdeal || {
                    let (gsz, fuse, ga) = analysis::ca_group_size(cfg, &pgrid);
                    gsz == 3 * cfg.m_iters && fuse && ga == 3
                })
        }
    };
    if closed_form_applies && rep.syncs != rep.s_closed_form {
        let msg = format!(
            "sync count {} != §5.3 closed form {} ({:?})",
            rep.syncs, rep.s_closed_form, alg
        );
        err(&mut rep, msg);
    }

    // per-rank counts vs the independent predictor
    let decomp = match Decomposition::new(cfg.extents(), pgrid) {
        Ok(d) => d,
        Err(e) => {
            err(&mut rep, format!("invalid decomposition: {e}"));
            return rep;
        }
    };
    let flags = filter_flags(cfg);
    let model = CostModel::tianhe2();
    let counts = rank_counts(g);
    let mut total_sends = 0u64;
    let mut total_recvs = 0u64;
    for (rank, c) in counts.iter().enumerate() {
        total_sends += c.send_msgs;
        total_recvs += c.recv_msgs;
        if c.send_msgs != c.recv_msgs {
            err(
                &mut rep,
                format!(
                    "rank {rank}: {} sends but {} recvs — asymmetric schedule",
                    c.send_msgs, c.recv_msgs
                ),
            );
        }
        let rc = analysis::predict_rank_mode(cfg, alg, &decomp, rank, &model, &flags, mode);
        if c.send_msgs != rc.p2p_msgs || c.send_elems != rc.p2p_elems {
            err(
                &mut rep,
                format!(
                    "rank {rank}: schedule graph ({} msgs, {} elems) != predictor ({}, {})",
                    c.send_msgs, c.send_elems, rc.p2p_msgs, rc.p2p_elems
                ),
            );
        }
        if c.collectives != rc.collective_calls {
            err(
                &mut rep,
                format!(
                    "rank {rank}: {} collective calls != predictor {}",
                    c.collectives, rc.collective_calls
                ),
            );
        }
    }
    if total_sends != total_recvs {
        err(
            &mut rep,
            format!("global send count {total_sends} != recv count {total_recvs}"),
        );
    }
    rep.ranks_checked = counts.len();
    rep
}
