//! Analysis 4 — runtime cross-check.
//!
//! At small rank counts the analyzer's statically derived per-rank counts
//! must equal the traffic [`agcm_comm`]'s statistics measure from a *real*
//! thread-backed run of the same configuration.  This pins the static
//! model to the executing system: if an integrator ever gains or loses a
//! message, the cross-check fails even though the purely static analyses
//! (which share the schedule metadata) would remain self-consistent.

use crate::counts::{rank_counts, RankCounts};
use crate::graph::ScheduleGraph;
use agcm_comm::{p2p_only_delta, Communicator, Universe};
use agcm_core::analysis::{AlgKind, CaMode};
use agcm_core::par::{Alg1Model, CaModel};
use agcm_core::{init, ModelConfig};
use agcm_mesh::ProcessGrid;

/// Per-rank traffic measured from one executed steady-state step.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MeasuredTraffic {
    /// Halo messages sent (collective-internal p2p subtracted).
    pub msgs: u64,
    /// Halo `f64` elements sent.
    pub elems: u64,
    /// Collective calls.
    pub collectives: u64,
}

/// Run `alg` on `pgrid` for real (threads), measure the second step —
/// steady state: warm `C` cache, pending smoothing — and return per-rank
/// halo traffic with collective-internal messages subtracted.
pub fn measure_step(cfg: &ModelConfig, alg: AlgKind, pgrid: ProcessGrid) -> Vec<MeasuredTraffic> {
    let cfg = cfg.clone();
    Universe::run(pgrid.size(), move |comm| {
        // the per-event log (needed to subtract collective-internal p2p)
        // is opt-in since it grows unboundedly on long runs
        comm.stats().set_event_logging(true);
        let mut step: Box<dyn FnMut(&Communicator)> = match alg {
            AlgKind::CommAvoiding => {
                let mut m = CaModel::new(&cfg, pgrid, comm).expect("valid CA model");
                let ic = init::perturbed_rest(m.geom(), 100.0, 1.0, 3);
                m.set_state(&ic);
                Box::new(move |c| m.step(c).expect("step"))
            }
            _ => {
                let mut m = Alg1Model::new(&cfg, pgrid, comm).expect("valid Alg1 model");
                let ic = init::perturbed_rest(m.geom(), 100.0, 1.0, 3);
                m.set_state(&ic);
                Box::new(move |c| m.step(c).expect("step"))
            }
        };
        step(comm); // warm-up: fills caches, leaves a smoothing pending
        let s0 = comm.stats().snapshot();
        let e0 = comm.stats().collective_events().len();
        step(comm);
        let delta = comm.stats().snapshot().delta(&s0);
        let events = comm.stats().collective_events()[e0..].to_vec();
        let pure = p2p_only_delta(&delta, &events);
        MeasuredTraffic {
            msgs: pure.p2p_sends,
            elems: pure.p2p_send_elems,
            collectives: events.len() as u64,
        }
    })
}

/// Compare the schedule graph against an executed run, rank by rank.
/// Returns the mismatches (empty = exact agreement).
pub fn cross_check(
    cfg: &ModelConfig,
    alg: AlgKind,
    pgrid: ProcessGrid,
) -> Result<Vec<RankCounts>, String> {
    let g = ScheduleGraph::extract(cfg, alg, CaMode::Grouped, pgrid)?;
    let stat = rank_counts(&g);
    let meas = measure_step(cfg, alg, pgrid);
    let mut errors = Vec::new();
    for (rank, (s, m)) in stat.iter().zip(&meas).enumerate() {
        if s.send_msgs != m.msgs || s.send_elems != m.elems || s.collectives != m.collectives {
            errors.push(format!(
                "rank {rank}: static ({} msgs, {} elems, {} colls) != measured ({}, {}, {})",
                s.send_msgs, s.send_elems, s.collectives, m.msgs, m.elems, m.collectives
            ));
        }
    }
    if errors.is_empty() {
        Ok(stat)
    } else {
        Err(errors.join("\n"))
    }
}
