//! Analysis 4 — runtime cross-check.
//!
//! At small rank counts the analyzer's statically derived per-rank counts
//! must equal the traffic [`agcm_comm`]'s statistics measure from a *real*
//! thread-backed run of the same configuration.  This pins the static
//! model to the executing system: if an integrator ever gains or loses a
//! message, the cross-check fails even though the purely static analyses
//! (which share the schedule metadata) would remain self-consistent.

use crate::counts::{rank_counts, RankCounts};
use crate::graph::ScheduleGraph;
use agcm_comm::{p2p_only_delta, Communicator, Universe};
use agcm_core::analysis::{AlgKind, CaMode};
use agcm_core::par::{Alg1Model, CaModel};
use agcm_core::{init, ModelConfig};
use agcm_mesh::ProcessGrid;

/// Per-rank traffic measured from one executed steady-state step.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MeasuredTraffic {
    /// Halo messages sent (collective-internal p2p subtracted).
    pub msgs: u64,
    /// Halo `f64` elements sent.
    pub elems: u64,
    /// Collective calls.
    pub collectives: u64,
}

/// Run `alg` on `pgrid` for real (threads), measure the second step —
/// steady state: warm `C` cache, pending smoothing — and return per-rank
/// halo traffic with collective-internal messages subtracted.
pub fn measure_step(cfg: &ModelConfig, alg: AlgKind, pgrid: ProcessGrid) -> Vec<MeasuredTraffic> {
    measure_step_inner(cfg, alg, pgrid, None)
}

/// Like [`measure_step`] but with a deterministic fault plan installed and
/// framed, retrying exchanges.  The certified counts must be *invariant*
/// under delivery faults: the stats count logical payloads (checksum
/// frames excluded), redundant duplicate deliveries are never counted,
/// drops/corruptions are recovered receiver-side without reposting sends,
/// and stalls/delays only move messages in time.
pub fn measure_step_under_faults(
    cfg: &ModelConfig,
    alg: AlgKind,
    pgrid: ProcessGrid,
    seed: u64,
    spec: &str,
) -> Vec<MeasuredTraffic> {
    measure_step_inner(cfg, alg, pgrid, Some((seed, spec.to_string())))
}

fn measure_step_inner(
    cfg: &ModelConfig,
    alg: AlgKind,
    pgrid: ProcessGrid,
    fault: Option<(u64, String)>,
) -> Vec<MeasuredTraffic> {
    let cfg = cfg.clone();
    Universe::run(pgrid.size(), move |comm| {
        if let Some((seed, spec)) = &fault {
            comm.install_faults(agcm_comm::FaultPlan::parse(*seed, spec).expect("valid spec"));
            comm.set_timeout(std::time::Duration::from_millis(500));
        }
        let faulty = fault.is_some();
        // the per-event log (needed to subtract collective-internal p2p)
        // is opt-in since it grows unboundedly on long runs
        comm.stats().set_event_logging(true);
        let mut step: Box<dyn FnMut(&Communicator)> = match alg {
            AlgKind::CommAvoiding => {
                let mut m = CaModel::new(&cfg, pgrid, comm).expect("valid CA model");
                if faulty {
                    // framed + retrying exchanges recover drops/corruption
                    m.set_framed(true);
                    m.set_retry(agcm_core::par::RetryPolicy::default());
                }
                let ic = init::perturbed_rest(m.geom(), 100.0, 1.0, 3);
                m.set_state(&ic);
                Box::new(move |c| m.step(c).expect("step"))
            }
            _ => {
                let mut m = Alg1Model::new(&cfg, pgrid, comm).expect("valid Alg1 model");
                if faulty {
                    m.set_framed(true);
                    m.set_retry(agcm_core::par::RetryPolicy::default());
                }
                let ic = init::perturbed_rest(m.geom(), 100.0, 1.0, 3);
                m.set_state(&ic);
                Box::new(move |c| m.step(c).expect("step"))
            }
        };
        step(comm); // warm-up: fills caches, leaves a smoothing pending
        let s0 = comm.stats().snapshot();
        let e0 = comm.stats().collective_events().len();
        step(comm);
        let delta = comm.stats().snapshot().delta(&s0);
        let events = comm.stats().collective_events()[e0..].to_vec();
        let pure = p2p_only_delta(&delta, &events);
        MeasuredTraffic {
            msgs: pure.p2p_sends,
            elems: pure.p2p_send_elems,
            collectives: events.len() as u64,
        }
    })
}

/// Compare the schedule graph against an executed run, rank by rank.
/// Returns the mismatches (empty = exact agreement).
pub fn cross_check(
    cfg: &ModelConfig,
    alg: AlgKind,
    pgrid: ProcessGrid,
) -> Result<Vec<RankCounts>, String> {
    let g = ScheduleGraph::extract(cfg, alg, CaMode::Grouped, pgrid)?;
    let stat = rank_counts(&g);
    let meas = measure_step(cfg, alg, pgrid);
    let mut errors = Vec::new();
    for (rank, (s, m)) in stat.iter().zip(&meas).enumerate() {
        if s.send_msgs != m.msgs || s.send_elems != m.elems || s.collectives != m.collectives {
            errors.push(format!(
                "rank {rank}: static ({} msgs, {} elems, {} colls) != measured ({}, {}, {})",
                s.send_msgs, s.send_elems, s.collectives, m.msgs, m.elems, m.collectives
            ));
        }
    }
    if errors.is_empty() {
        Ok(stat)
    } else {
        Err(errors.join("\n"))
    }
}
