//! Analysis 2 — deadlock-freedom by virtual execution.
//!
//! The simulated MPI runtime's sends are eager (buffered, never block);
//! receives block until a matching send has been *posted*; collectives
//! synchronize their whole subcommunicator.  Under these semantics the
//! reachable-state question collapses: execution is monotone (posting a
//! send or completing a barrier never disables another rank's step), so a
//! single worklist pass either drives every rank's program to completion —
//! a *proof* of deadlock-freedom for this schedule, replacing "the 30 s
//! timeout did not fire" — or reaches a stuck state whose wait-for graph
//! exhibits the blocking cycle/chain.
//!
//! Cost is linear in events: p = 4096 rank schedules check in well under a
//! second without spawning a thread.

use crate::graph::{Action, ScheduleGraph};
use std::collections::{HashMap, VecDeque};

/// Outcome of the deadlock analysis.
#[derive(Debug, Clone)]
pub enum DeadlockReport {
    /// Every rank ran its program to completion: the schedule cannot
    /// deadlock under eager-send semantics.
    Free {
        /// Actions virtually executed (= total schedule events).
        actions: usize,
    },
    /// Some ranks can never progress.
    Stuck {
        /// Ranks blocked forever.
        blocked: Vec<usize>,
        /// A wait-for cycle among them, when one exists (`a` waits for the
        /// next element, the last waits for the first); a blocked chain
        /// with no cycle means a peer terminated without sending.
        cycle: Option<Vec<usize>>,
        /// Human-readable description of the first blocked ranks.
        detail: String,
    },
}

impl DeadlockReport {
    /// Whether the schedule was proven deadlock-free.
    pub fn is_free(&self) -> bool {
        matches!(self, DeadlockReport::Free { .. })
    }
}

/// Virtually execute the schedule and report.
pub fn check_deadlock(g: &ScheduleGraph) -> DeadlockReport {
    let p = g.p;
    let mut pc = vec![0usize; p];
    // (dst, src, tag) -> posted-but-unconsumed send count
    let mut avail: HashMap<(u32, u32, u32), u32> = HashMap::new();
    // (dst, src, tag) -> the rank blocked on that receive
    let mut recv_wait: HashMap<(u32, u32, u32), usize> = HashMap::new();
    let mut arrivals: Vec<Vec<u32>> = vec![Vec::new(); g.groups.len()];
    let mut done: Vec<bool> = vec![false; g.groups.len()];
    let mut waiters: Vec<Vec<usize>> = vec![Vec::new(); g.groups.len()];
    let mut arrived = vec![false; p]; // rank has entered its current barrier
    let mut runnable: VecDeque<usize> = (0..p).collect();
    let mut queued = vec![true; p];
    let mut actions = 0usize;

    while let Some(r) = runnable.pop_front() {
        queued[r] = false;
        while pc[r] < g.programs[r].len() {
            match g.programs[r][pc[r]] {
                Action::Send(i) => {
                    let s = &g.sends[i as usize];
                    let key = (s.dst, s.src, s.tag);
                    *avail.entry(key).or_insert(0) += 1;
                    if let Some(w) = recv_wait.remove(&key) {
                        if !queued[w] {
                            queued[w] = true;
                            runnable.push_back(w);
                        }
                    }
                    pc[r] += 1;
                    actions += 1;
                }
                Action::Recv(i) => {
                    let e = &g.recvs[i as usize];
                    if e.dropped {
                        pc[r] += 1;
                        continue;
                    }
                    let key = (e.rank, e.src, e.tag);
                    match avail.get_mut(&key) {
                        Some(c) if *c > 0 => {
                            *c -= 1;
                            pc[r] += 1;
                            actions += 1;
                        }
                        _ => {
                            recv_wait.insert(key, r);
                            break;
                        }
                    }
                }
                Action::Barrier(b) => {
                    let b = b as usize;
                    if done[b] {
                        arrived[r] = false;
                        pc[r] += 1;
                        actions += 1;
                        continue;
                    }
                    if !arrived[r] {
                        arrived[r] = true;
                        arrivals[b].push(r as u32);
                        if arrivals[b].len() == g.groups[b].len() {
                            done[b] = true;
                            for &w in &waiters[b] {
                                if !queued[w] {
                                    queued[w] = true;
                                    runnable.push_back(w);
                                }
                            }
                            // fall through: the done[b] arm advances us
                            continue;
                        }
                    }
                    waiters[b].push(r);
                    break;
                }
            }
        }
    }

    let blocked: Vec<usize> = (0..p).filter(|&r| pc[r] < g.programs[r].len()).collect();
    if blocked.is_empty() {
        return DeadlockReport::Free { actions };
    }

    // wait-for edges among blocked ranks
    let describe = |r: usize| -> String {
        match g.programs[r][pc[r]] {
            Action::Recv(i) => {
                let e = &g.recvs[i as usize];
                format!(
                    "rank {} blocked on recv from {} tag {:#x} (op {})",
                    r, e.src, e.tag, e.op
                )
            }
            Action::Barrier(b) => format!(
                "rank {} blocked in collective {} ({} of {} arrived)",
                r,
                b,
                arrivals[b as usize].len(),
                g.groups[b as usize].len()
            ),
            Action::Send(_) => unreachable!("sends never block"),
        }
    };
    let waits_for = |r: usize| -> Vec<usize> {
        match g.programs[r][pc[r]] {
            Action::Recv(i) => vec![g.recvs[i as usize].src as usize],
            Action::Barrier(b) => {
                let b = b as usize;
                g.groups[b]
                    .iter()
                    .map(|&m| m as usize)
                    .filter(|&m| !arrivals[b].contains(&(m as u32)))
                    .collect()
            }
            Action::Send(_) => Vec::new(),
        }
    };
    // DFS for a cycle over the wait-for graph restricted to blocked ranks
    let is_blocked = |r: usize| pc[r] < g.programs[r].len();
    let mut cycle = None;
    'outer: for &start in &blocked {
        let mut stack = vec![start];
        let mut path_pos: HashMap<usize, usize> = HashMap::new();
        path_pos.insert(start, 0);
        let mut iters = 0usize;
        while let Some(&cur) = stack.last() {
            iters += 1;
            if iters > 4 * g.p + 8 {
                break; // defensive bound; move to the next start
            }
            let next = waits_for(cur).into_iter().find(|&n| is_blocked(n));
            match next {
                Some(n) => {
                    if let Some(&pos) = path_pos.get(&n) {
                        cycle = Some(stack[pos..].to_vec());
                        break 'outer;
                    }
                    path_pos.insert(n, stack.len());
                    stack.push(n);
                }
                None => break, // waits only on terminated ranks: a dead chain
            }
        }
    }
    let detail = blocked
        .iter()
        .take(4)
        .map(|&r| describe(r))
        .collect::<Vec<_>>()
        .join("; ");
    DeadlockReport::Stuck {
        blocked,
        cycle,
        detail,
    }
}
