//! Static extraction of the per-step communication event graph.
//!
//! [`ScheduleGraph::extract`] replays the schedule metadata of
//! [`agcm_core::par::schedule`] through the same geometry the executing
//! exchanger uses — [`ExchangePlan::with_extents`] per rank, field and
//! depth, and [`wire_tag`]/[`dir_index`] for the exact wire tags — to
//! produce every send, receive and collective of one steady-state time
//! step, for every rank, **without spawning a thread**.
//!
//! The graph also stores each rank's *program*: its actions in issue order
//! (an exchange posts all sends, then blocks on its receives; a collective
//! is a barrier over its subcommunicator).  The deadlock analysis virtually
//! executes these programs; the mutation methods below deliberately corrupt
//! them so tests can show each analysis rejecting a broken schedule.

use agcm_core::analysis::{AlgKind, CaMode};
use agcm_core::par::schedule::{self, StepOp};
use agcm_core::par::{dir_index, wire_tag};
use agcm_core::ModelConfig;
use agcm_mesh::{Decomposition, ExchangePlan, ProcessGrid};
use std::collections::HashMap;

/// One posted (buffered, non-blocking) send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendEvent {
    /// Sending rank.
    pub src: u32,
    /// Destination rank.
    pub dst: u32,
    /// Wire tag ([`wire_tag`]).
    pub tag: u32,
    /// Payload `f64` element count.
    pub elems: u64,
    /// Index into [`ScheduleGraph::ops`].
    pub op: u32,
}

/// One blocking receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvEvent {
    /// Receiving rank.
    pub rank: u32,
    /// Expected source rank.
    pub src: u32,
    /// Expected wire tag.
    pub tag: u32,
    /// Expected payload element count.
    pub elems: u64,
    /// Index into [`ScheduleGraph::ops`].
    pub op: u32,
    /// Tombstone set by [`ScheduleGraph::drop_recv`] (negative tests).
    pub dropped: bool,
}

/// One entry of a rank's program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Post send `sends[i]` (never blocks: the runtime's sends are eager).
    Send(u32),
    /// Block until send matching `recvs[i]` has been posted.
    Recv(u32),
    /// Enter barrier `groups[i]` (models a collective: no rank leaves a
    /// collective before every member has entered it).
    Barrier(u32),
}

/// The statically extracted communication schedule of one time step.
#[derive(Debug, Clone)]
pub struct ScheduleGraph {
    /// Number of ranks.
    pub p: usize,
    /// The step's operation list (identical on every rank — SPMD).
    pub ops: Vec<StepOp>,
    /// All send events, in rank-major program order.
    pub sends: Vec<SendEvent>,
    /// All receive events, in rank-major program order.
    pub recvs: Vec<RecvEvent>,
    /// Collective barrier instances: member ranks of each.
    pub groups: Vec<Vec<u32>>,
    /// Per-rank action sequences.
    pub programs: Vec<Vec<Action>>,
}

impl ScheduleGraph {
    /// Extract the steady-state step schedule of `alg` on `pgrid`.
    ///
    /// `mode` selects the CA accounting ([`CaMode`]); it is ignored for
    /// Algorithm 1.  Fails on invalid configurations (e.g. Algorithm 2 on
    /// an X-Y grid), mirroring the model constructors.
    pub fn extract(
        cfg: &ModelConfig,
        alg: AlgKind,
        mode: CaMode,
        pgrid: ProcessGrid,
    ) -> Result<ScheduleGraph, String> {
        if alg == AlgKind::CommAvoiding && pgrid.px() != 1 {
            return Err("Algorithm 2 requires a Y-Z decomposition (p_x = 1)".into());
        }
        let decomp = Decomposition::new(cfg.extents(), pgrid)
            .map_err(|e| format!("invalid decomposition: {e}"))?;
        let ops = match alg {
            AlgKind::CommAvoiding => schedule::alg2_step(cfg, &pgrid, mode),
            _ => schedule::alg1_step(cfg, &pgrid),
        };
        let p = pgrid.size();
        let (_, _, pz) = pgrid.dims();
        let px = pgrid.px();
        let mut g = ScheduleGraph {
            p,
            ops: ops.clone(),
            sends: Vec::new(),
            recvs: Vec::new(),
            groups: Vec::new(),
            programs: Vec::with_capacity(p),
        };
        // barrier instance per (collective op, subcommunicator color)
        let mut barrier_ids: HashMap<(u32, u32, u32), u32> = HashMap::new();
        for rank in 0..p {
            let ext = decomp.subdomain(rank).extents();
            let (cx, cy, cz) = pgrid.coords(rank);
            let mut prog = Vec::new();
            let mut seq: u64 = 0;
            for (oi, op) in ops.iter().enumerate() {
                match op {
                    StepOp::Exchange(ex) => {
                        let mut recv_actions = Vec::new();
                        for (fi, shape) in ex.fields.iter().enumerate() {
                            let plan = ExchangePlan::with_extents(
                                &decomp,
                                rank,
                                ex.depth,
                                shape.extents(ext),
                            );
                            for spec in plan.specs() {
                                if shape.is_2d() && spec.link.offset.2 != 0 {
                                    continue;
                                }
                                let (dx, dy, dz) = spec.link.offset;
                                prog.push(Action::Send(g.sends.len() as u32));
                                g.sends.push(SendEvent {
                                    src: rank as u32,
                                    dst: spec.link.rank as u32,
                                    tag: wire_tag(seq, dir_index((dx, dy, dz)), fi),
                                    elems: spec.send.len() as u64,
                                    op: oi as u32,
                                });
                                recv_actions.push(Action::Recv(g.recvs.len() as u32));
                                g.recvs.push(RecvEvent {
                                    rank: rank as u32,
                                    src: spec.link.rank as u32,
                                    tag: wire_tag(seq, dir_index((-dx, -dy, -dz)), fi),
                                    elems: spec.recv.len() as u64,
                                    op: oi as u32,
                                    dropped: false,
                                });
                            }
                        }
                        prog.extend(recv_actions);
                        seq += 1;
                    }
                    StepOp::ZAllgather => {
                        debug_assert!(pz > 1);
                        let key = (oi as u32, cx as u32, cy as u32);
                        let id = *barrier_ids.entry(key).or_insert_with(|| {
                            g.groups.push(Vec::new());
                            (g.groups.len() - 1) as u32
                        });
                        g.groups[id as usize].push(rank as u32);
                        prog.push(Action::Barrier(id));
                    }
                    StepOp::FilterTranspose => {
                        debug_assert!(px > 1);
                        let key = (oi as u32, cy as u32, cz as u32);
                        let id = *barrier_ids.entry(key).or_insert_with(|| {
                            g.groups.push(Vec::new());
                            (g.groups.len() - 1) as u32
                        });
                        g.groups[id as usize].push(rank as u32);
                        prog.push(Action::Barrier(id));
                    }
                    // kernel applications carry no communication events;
                    // the dataflow pass (`crate::dataflow`) replays them
                    StepOp::Compute(_) => {}
                }
            }
            g.programs.push(prog);
        }
        Ok(g)
    }

    /// Number of halo exchanges per step (same on every rank).
    pub fn exchange_ops(&self) -> u64 {
        schedule::exchange_count(&self.ops)
    }

    /// Number of collective calls per rank per step.
    pub fn collective_ops(&self) -> u64 {
        schedule::collective_count(&self.ops)
    }

    // --- deliberate corruption, for negative tests -----------------------

    /// Flip tag bits of the `nth` send of `rank`.  Returns false when the
    /// rank has fewer sends.
    pub fn retag_send(&mut self, rank: usize, nth: usize, xor: u32) -> bool {
        let mut seen = 0;
        for s in self.sends.iter_mut() {
            if s.src == rank as u32 {
                if seen == nth {
                    s.tag ^= xor;
                    return true;
                }
                seen += 1;
            }
        }
        false
    }

    /// Delete the `nth` receive of `rank` (the rank simply never posts it).
    pub fn drop_recv(&mut self, rank: usize, nth: usize) -> bool {
        let mut seen = 0;
        for r in self.recvs.iter_mut() {
            if r.rank == rank as u32 && !r.dropped {
                if seen == nth {
                    r.dropped = true;
                    return true;
                }
                seen += 1;
            }
        }
        false
    }

    /// Reorder exchange `op` on **every** rank so its receives are issued
    /// before its sends — the classic head-of-line blocking schedule that
    /// deadlocks without buffered sends.
    pub fn recvs_before_sends(&mut self, op: usize) {
        for prog in self.programs.iter_mut() {
            let belongs = |a: &Action, sends: &[SendEvent], recvs: &[RecvEvent]| match a {
                Action::Send(i) => sends[*i as usize].op == op as u32,
                Action::Recv(i) => recvs[*i as usize].op == op as u32,
                Action::Barrier(_) => false,
            };
            let idx: Vec<usize> = (0..prog.len())
                .filter(|&i| belongs(&prog[i], &self.sends, &self.recvs))
                .collect();
            let mut reordered: Vec<Action> = idx
                .iter()
                .map(|&i| prog[i])
                .filter(|a| matches!(a, Action::Recv(_)))
                .collect();
            reordered.extend(
                idx.iter()
                    .map(|&i| prog[i])
                    .filter(|a| matches!(a, Action::Send(_))),
            );
            for (&i, a) in idx.iter().zip(reordered) {
                prog[i] = a;
            }
        }
    }

    /// Swap the first two barrier entries of `rank`'s program — a
    /// collective-order mismatch across ranks.  Returns false when the rank
    /// enters fewer than two barriers.
    pub fn swap_barriers(&mut self, rank: usize) -> bool {
        let prog = &mut self.programs[rank];
        let bars: Vec<usize> = (0..prog.len())
            .filter(|&i| matches!(prog[i], Action::Barrier(_)))
            .collect();
        if bars.len() < 2 {
            return false;
        }
        prog.swap(bars[0], bars[1]);
        true
    }
}
