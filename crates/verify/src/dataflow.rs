//! Stencil dataflow certification: prove every kernel read of a step
//! schedule is covered by the halo layers the preceding exchange shipped.
//!
//! The count analyses ([`crate::counts`]) certify *how much* the schedules
//! communicate; this module certifies that what they communicate is
//! *enough*.  It virtually executes the per-step operation list
//! ([`agcm_core::par::schedule`]) against the per-kernel access
//! declarations ([`agcm_core::access`]), tracking, per buffer and per
//! axis side, how many halo layers are currently valid:
//!
//! * an [`StepOp::Exchange`] makes `min(depth, block extent)` layers of
//!   its field list valid (a single-hop exchange can never ship more rows
//!   than the neighbouring rank owns — the clamp that forces
//!   [`agcm_core::analysis::ca_group_size`] to group sweeps),
//! * a [`StepOp::Compute`] at validity dilation `d` *requires*
//!   `max(0, d + extent)` valid layers for every declared read, then
//!   leaves its outputs valid to exactly `d` layers (plus the declared
//!   write growth: `φ'` one extra row, `g_w` one extra interface),
//! * the collective operator `C` consumes one pending
//!   [`StepOp::ZAllgather`] whenever a sub-update runs it fresh with
//!   `p_z > 1` — so deleting a collective whose column sums are still
//!   read is caught, not just miscounted,
//! * the whole-x filter consumes two pending
//!   [`StepOp::FilterTranspose`] legs when x is decomposed.
//!
//! [`check`] either returns a [`FlowProof`] — every read of the step was
//! covered, with the tightest margin observed — or the first
//! [`Counterexample`], naming the operator, field, axis side, uncovered
//! offset and failing op index.  The negative-test helpers
//! ([`shrink_exchange`], [`drop_collective`]) and
//! [`agcm_core::par::schedule::alg2_step_for`] (over-fused what-if
//! schedules) exist so tests can show the analyzer *rejecting* broken
//! schedules, not merely blessing good ones.

use agcm_core::access::{self, AccessSpec, FieldAccess};
use agcm_core::analysis::{AlgKind, CaMode};
use agcm_core::par::schedule::{self, CSource, ComputeOp, ExchangeOp, StepOp};
use agcm_core::ModelConfig;
use agcm_mesh::{Axis, ProcessGrid};
use std::fmt;

/// "Unbounded" halo validity: the axis is not decomposed (its halo is
/// maintained locally — periodic wrap in x, physical boundary fill in
/// y/z), so no read can outrun it.
const INF: u64 = u64::MAX;

/// Side index: `[x−, x+, y−, y+, z−, z+]`.
const SIDES: usize = 6;

fn side_axis(side: usize) -> Axis {
    Axis::ALL[side / 2]
}

/// Per-side valid halo layers of one buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Avail([u64; SIDES]);

impl Avail {
    fn uniform(v: u64) -> Self {
        Avail([v; SIDES])
    }
}

/// Why a schedule failed certification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// A declared read reaches beyond the valid halo layers.
    UncoveredHalo,
    /// A sub-update runs the collective `C` fresh but no z-allgather
    /// precedes it — its column sums would use stale remote blocks.
    MissingCollective,
    /// The whole-x filter runs without its two transpose legs.
    MissingTranspose,
}

/// The first uncovered read of a broken schedule: operator, field, offset
/// and step, as the tentpole demands.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// Failure class.
    pub kind: FailureKind,
    /// Index into the step's operation list.
    pub op_index: usize,
    /// Human description of the failing kernel application, e.g.
    /// `"adaptation (sweep 4, sub-update 1)"`.
    pub operator: String,
    /// The field whose read is uncovered.
    pub field: &'static str,
    /// Axis of the uncovered offset.
    pub axis: Axis,
    /// `true` when the positive side of the axis fails.
    pub positive: bool,
    /// Halo layers the read requires (the uncovered offset's magnitude).
    pub needed: u64,
    /// Halo layers actually valid.
    pub have: u64,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = if self.positive { "+" } else { "−" };
        match self.kind {
            FailureKind::UncoveredHalo => write!(
                f,
                "op {}: {} reads `{}` at {}{sign}{} but only {} halo layer(s) are valid",
                self.op_index, self.operator, self.field, self.axis, self.needed, self.have
            ),
            FailureKind::MissingCollective => write!(
                f,
                "op {}: {} runs C fresh on `{}` whole-column sums with no z-allgather pending",
                self.op_index, self.operator, self.field
            ),
            FailureKind::MissingTranspose => write!(
                f,
                "op {}: {} needs 2 filter-transpose legs for whole-x `{}` rows, {} pending",
                self.op_index, self.operator, self.field, self.have
            ),
        }
    }
}

/// Proof that every read of the step was covered.
#[derive(Debug, Clone, Copy)]
pub struct FlowProof {
    /// Operations replayed.
    pub ops: usize,
    /// Kernel applications checked.
    pub computes: usize,
    /// Exchanges applied.
    pub exchanges: usize,
    /// Z-allgathers consumed by fresh `C` runs.
    pub collectives_consumed: usize,
    /// Individual (field, axis side) read requirements discharged.
    pub reads_checked: u64,
    /// Smallest `valid − required` slack over all finite checks; `Some(0)`
    /// means some exchange depth is *exactly* consumed — the schedule has
    /// no wasted halo.
    pub min_margin: Option<u64>,
}

struct FlowState {
    /// Valid halo layers of the evaluation state (`u, v, φ, p_sa` travel
    /// together).
    eval: Avail,
    /// Valid halo layers of the iteration base (`base.copy_from(psi)`).
    base: Avail,
    /// Valid halo layers of the cached `C` outputs.
    vsum: Avail,
    gw: Avail,
    phi_p: Avail,
    /// Z-allgathers announced but not yet consumed by a fresh `C`.
    pending_allgathers: usize,
    /// Filter-transpose legs announced but not yet consumed.
    pending_transposes: usize,
    /// Minimum owned block extent per axis (floor, as `ca_group_size`).
    block: [u64; 3],
    /// Ranks per axis.
    pdims: [usize; 3],
}

impl FlowState {
    fn new(cfg: &ModelConfig, pgrid: &ProcessGrid) -> Self {
        let (px, py, pz) = pgrid.dims();
        let block = |n: usize, p: usize| if p > 1 { (n / p) as u64 } else { INF };
        let fresh = |_: ()| {
            let mut a = Avail::uniform(0);
            for side in 0..SIDES {
                if [px, py, pz][side / 2] == 1 {
                    a.0[side] = INF;
                }
            }
            a
        };
        let start = fresh(());
        FlowState {
            eval: start,
            base: start,
            vsum: start,
            gw: start,
            phi_p: start,
            pending_allgathers: 0,
            pending_transposes: 0,
            block: [block(cfg.nx, px), block(cfg.ny, py), block(cfg.nz, pz)],
            pdims: [px, py, pz],
        }
    }

    fn decomposed(&self, side: usize) -> bool {
        self.pdims[side / 2] > 1
    }

    /// Halo layers one exchange of `depth` makes valid on `side` — clamped
    /// to the neighbour's block extent (single-hop).
    fn shipped(&self, depth: &agcm_mesh::HaloWidths, side: usize) -> u64 {
        if !self.decomposed(side) {
            return INF;
        }
        let d = [depth.xm, depth.xp, depth.ym, depth.yp, depth.zm, depth.zp][side] as u64;
        d.min(self.block[side / 2])
    }

    fn apply_exchange(&mut self, ex: &ExchangeOp) {
        let mut a = Avail::uniform(0);
        for side in 0..SIDES {
            a.0[side] = self.shipped(&ex.depth, side);
        }
        // wire order: STATE4 = eval; ADV5 = eval + g_w; DEEP7 = eval +
        // vsum + g_w + φ' (par::schedule's field lists)
        self.eval = a;
        if ex.fields.len() >= 5 {
            self.gw = a;
        }
        if ex.fields.len() == 7 {
            self.vsum = a;
            self.phi_p = a;
        }
    }

    /// Layers `read` requires on `side` when evaluated at dilation `dil`.
    /// Regions dilate in y and z only (x is never decomposed under CA and
    /// never region-dilated).
    fn needed(dil: i16, read: &FieldAccess, side: usize) -> u64 {
        let axis = side_axis(side);
        let (neg, pos) = read.bounds.along(axis);
        let ext = if side.is_multiple_of(2) { neg } else { pos } as i64;
        let d = if axis == Axis::X { 0 } else { dil as i64 };
        (d + ext).max(0) as u64
    }

    fn avail_of(&self, field: &str) -> &Avail {
        match field {
            "vsum" => &self.vsum,
            "gw" => &self.gw,
            "phi_p" => &self.phi_p,
            _ => &self.eval,
        }
    }
}

/// Tracks counterexample context while checking one compute op.
struct Checker<'a> {
    oi: usize,
    operator: String,
    proof: &'a mut FlowProof,
}

impl Checker<'_> {
    fn require(
        &mut self,
        avail: &Avail,
        dil: i16,
        read: &FieldAccess,
    ) -> Result<(), Counterexample> {
        for side in 0..SIDES {
            let have = avail.0[side];
            let needed = FlowState::needed(dil, read, side);
            if have < needed {
                return Err(Counterexample {
                    kind: FailureKind::UncoveredHalo,
                    op_index: self.oi,
                    operator: self.operator.clone(),
                    field: read.field,
                    axis: side_axis(side),
                    positive: side % 2 == 1,
                    needed,
                    have,
                });
            }
            self.proof.reads_checked += 1;
            if have != INF {
                let margin = have - needed;
                self.proof.min_margin =
                    Some(self.proof.min_margin.map_or(margin, |m| m.min(margin)));
            }
        }
        Ok(())
    }
}

/// Locally derived diagnostics: recomputed on the evaluation region from
/// the state every sub-update (`update_surface`/`update_dsa`/`update_dp`),
/// so their halo coverage reduces to the state reads already declared
/// (`p_sa` at ±1) and never to an exchange.
fn locally_derived(field: &str) -> bool {
    matches!(field, "dp" | "dsa")
}

fn apply_compute(
    st: &mut FlowState,
    oi: usize,
    c: &ComputeOp,
    proof: &mut FlowProof,
) -> Result<(), Counterexample> {
    let spec = access::spec(c.op)
        .unwrap_or_else(|| panic!("compute op `{}` not in the access registry", c.op));
    let operator = if c.sub > 0 {
        format!("{} (sweep {}, sub-update {})", c.op, c.sweep, c.sub)
    } else {
        format!("{} (sweep {})", c.op, c.sweep)
    };
    let mut ck = Checker {
        oi,
        operator,
        proof,
    };

    // base snapshot happens after the preceding exchange, before any write
    if c.snapshot_base {
        st.base = st.eval;
    }

    // the collective C runs (and its outputs land) before the stencil
    // tendency reads them
    if c.c == CSource::Fresh {
        let cspec = access::spec("vertical.c").expect("vertical.c registered");
        for read in cspec.reads() {
            if locally_derived(read.field) {
                continue;
            }
            if read.whole_z && st.pdims[2] > 1 && st.pending_allgathers == 0 {
                return Err(Counterexample {
                    kind: FailureKind::MissingCollective,
                    op_index: oi,
                    operator: format!("vertical.C @ {}", ck.operator),
                    field: read.field,
                    axis: Axis::Z,
                    positive: true,
                    needed: 1,
                    have: 0,
                });
            }
            ck.require(st.avail_of(read.field), c.dilate, read)?;
        }
        if st.pdims[2] > 1 {
            // one allgather serves all of C's whole-column sums
            st.pending_allgathers -= 1;
            ck.proof.collectives_consumed += 1;
        }
        apply_writes(st, cspec, c.dilate);
    }

    // whole-x reads (the filter) need their transpose legs when x is
    // decomposed
    if spec.reads().any(|r| r.whole_x) && st.pdims[0] > 1 {
        if st.pending_transposes < 2 {
            return Err(Counterexample {
                kind: FailureKind::MissingTranspose,
                op_index: oi,
                operator: ck.operator,
                field: spec.reads().find(|r| r.whole_x).map(|r| r.field).unwrap(),
                axis: Axis::X,
                positive: true,
                needed: 2,
                have: st.pending_transposes as u64,
            });
        }
        st.pending_transposes -= 2;
    }

    // every declared stencil read against the current validity
    for read in spec.reads() {
        if locally_derived(read.field) {
            continue;
        }
        ck.require(st.avail_of(read.field), c.dilate, read)?;
    }
    // the lincomb `out = base + dt·tend` reads the base point-wise on the
    // region
    if c.reads_base {
        let base_read = FieldAccess {
            field: "base",
            dir: access::AccessDir::Read,
            bounds: access::OffsetBox::pointwise(),
            whole_x: false,
            whole_z: false,
        };
        ck.require(&st.base, c.dilate, &base_read)?;
    }

    apply_writes(st, spec, c.dilate);
    proof.computes += 1;
    Ok(())
}

/// A kernel's writes leave its outputs valid to exactly the evaluation
/// dilation (plus the declared write growth); anything beyond is stale.
fn apply_writes(st: &mut FlowState, spec: &AccessSpec, dil: i16) {
    let wrote_state = spec
        .writes()
        .any(|w| matches!(w.field, "u" | "v" | "phi" | "psa"));
    let valid = dil.max(0) as u64;
    let set = |st: &FlowState, grow: &access::OffsetBox| {
        let mut a = Avail::uniform(0);
        for side in 0..SIDES {
            if !st.decomposed(side) {
                a.0[side] = INF;
                continue;
            }
            let axis = side_axis(side);
            let (neg, pos) = grow.along(axis);
            let g = if side % 2 == 0 { neg } else { pos } as u64;
            a.0[side] = if axis == Axis::X { INF } else { valid + g };
        }
        a
    };
    // a negative dilation is a partial scratch write (the fused former
    // smoothing on the shrunk interior): the exchanged buffer stays the
    // readable one until the later smoothing completes and publishes it
    if wrote_state && dil >= 0 {
        st.eval = set(st, &access::OffsetBox::pointwise());
    }
    for w in spec.writes() {
        match w.field {
            "vsum" => st.vsum = set(st, &w.bounds),
            "gw" => st.gw = set(st, &w.bounds),
            "phi_p" => st.phi_p = set(st, &w.bounds),
            _ => {}
        }
    }
}

/// Replay `ops` and prove (or refute) halo coverage of every read.
pub fn check_ops(
    cfg: &ModelConfig,
    pgrid: &ProcessGrid,
    ops: &[StepOp],
) -> Result<FlowProof, Counterexample> {
    let mut st = FlowState::new(cfg, pgrid);
    let mut proof = FlowProof {
        ops: ops.len(),
        computes: 0,
        exchanges: 0,
        collectives_consumed: 0,
        reads_checked: 0,
        min_margin: None,
    };
    for (oi, op) in ops.iter().enumerate() {
        match op {
            StepOp::Exchange(ex) => {
                st.apply_exchange(ex);
                proof.exchanges += 1;
            }
            StepOp::ZAllgather => st.pending_allgathers += 1,
            StepOp::FilterTranspose => st.pending_transposes += 1,
            StepOp::Compute(c) => apply_compute(&mut st, oi, c, &mut proof)?,
        }
    }
    Ok(proof)
}

/// Build the step schedule of `alg`/`mode` on `pgrid` and
/// [`check_ops`] it.
pub fn check(
    cfg: &ModelConfig,
    alg: AlgKind,
    mode: CaMode,
    pgrid: &ProcessGrid,
) -> Result<FlowProof, Counterexample> {
    let ops = match alg {
        AlgKind::CommAvoiding => schedule::alg2_step(cfg, pgrid, mode),
        _ => schedule::alg1_step(cfg, pgrid),
    };
    check_ops(cfg, pgrid, &ops)
}

// --- deliberate corruption, for negative tests ---------------------------

/// Shrink the `nth` exchange's y depth by `dy` and z depth by `dz` layers
/// (saturating).  Returns false when the schedule has fewer exchanges.
pub fn shrink_exchange(ops: &mut [StepOp], nth: usize, dy: usize, dz: usize) -> bool {
    let mut seen = 0;
    for op in ops.iter_mut() {
        if let StepOp::Exchange(ex) = op {
            if seen == nth {
                ex.depth.ym = ex.depth.ym.saturating_sub(dy);
                ex.depth.yp = ex.depth.yp.saturating_sub(dy);
                ex.depth.zm = ex.depth.zm.saturating_sub(dz);
                ex.depth.zp = ex.depth.zp.saturating_sub(dz);
                return true;
            }
            seen += 1;
        }
    }
    false
}

/// Delete the `nth` z-allgather from the schedule.  Returns false when
/// there are fewer collectives.
pub fn drop_collective(ops: &mut Vec<StepOp>, nth: usize) -> bool {
    let mut seen = 0;
    for (i, op) in ops.iter().enumerate() {
        if matches!(op, StepOp::ZAllgather) {
            if seen == nth {
                ops.remove(i);
                return true;
            }
            seen += 1;
        }
    }
    false
}
