//! Analysis 1 — send/receive matching.
//!
//! Every posted send must be consumed by exactly one receive on its
//! destination rank with the same `(source, tag)` and the same payload
//! size, and vice versa: no orphan sends (messages that would sit in the
//! unexpected-message queue forever), no orphan receives (which would hit
//! the runtime's deadlock timeout), no size mismatches (which would corrupt
//! the unpacked halo).

use crate::graph::ScheduleGraph;
use std::collections::HashMap;

/// Cap on stored error strings (the counts are always exact).
const MAX_ERRORS: usize = 24;

/// Outcome of the matching analysis.
#[derive(Debug, Clone, Default)]
pub struct MatchReport {
    /// Sends examined.
    pub sends: usize,
    /// Receives examined (dropped receives excluded).
    pub recvs: usize,
    /// Fully matched send/recv pairs.
    pub matched: usize,
    /// Sends no receive consumes.
    pub orphan_sends: usize,
    /// Receives no send feeds.
    pub orphan_recvs: usize,
    /// Matched pairs whose payload sizes disagree.
    pub size_mismatches: usize,
    /// Human-readable samples of the failures (capped).
    pub errors: Vec<String>,
}

impl MatchReport {
    /// Whether the schedule is fully matched.
    pub fn is_ok(&self) -> bool {
        self.orphan_sends == 0 && self.orphan_recvs == 0 && self.size_mismatches == 0
    }
}

/// Channel address: `(dst, src, tag)`.
type ChanKey = (u32, u32, u32);
/// Payload sizes queued on one channel: `(send elems, recv elems)`, FIFO.
type ChanQueues = (Vec<u64>, Vec<u64>);

/// Run the matching analysis on a schedule graph.
pub fn check_matching(g: &ScheduleGraph) -> MatchReport {
    // FIFO queues per (dst, src, tag) channel, in program order — the same
    // order the runtime's per-channel queues see.
    let mut chans: HashMap<ChanKey, ChanQueues> = HashMap::new();
    let mut rep = MatchReport::default();
    for s in &g.sends {
        rep.sends += 1;
        chans
            .entry((s.dst, s.src, s.tag))
            .or_default()
            .0
            .push(s.elems);
    }
    for r in &g.recvs {
        if r.dropped {
            continue;
        }
        rep.recvs += 1;
        chans
            .entry((r.rank, r.src, r.tag))
            .or_default()
            .1
            .push(r.elems);
    }
    fn err(rep: &mut MatchReport, msg: String) {
        if rep.errors.len() < MAX_ERRORS {
            rep.errors.push(msg);
        }
    }
    let mut keys: Vec<_> = chans.keys().copied().collect();
    keys.sort_unstable();
    for key in keys {
        let (dst, src, tag) = key;
        let (snd, rcv) = &chans[&key];
        let paired = snd.len().min(rcv.len());
        for i in 0..paired {
            if snd[i] == rcv[i] {
                rep.matched += 1;
            } else {
                rep.size_mismatches += 1;
                err(
                    &mut rep,
                    format!(
                        "size mismatch {} -> {} tag {:#x}: send {} elems, recv {} elems",
                        src, dst, tag, snd[i], rcv[i]
                    ),
                );
            }
        }
        for &elems in &snd[paired..] {
            rep.orphan_sends += 1;
            err(
                &mut rep,
                format!(
                    "orphan send {} -> {} tag {:#x} ({} elems): no matching recv",
                    src, dst, tag, elems
                ),
            );
        }
        for &elems in &rcv[paired..] {
            rep.orphan_recvs += 1;
            err(
                &mut rep,
                format!(
                    "orphan recv on {} from {} tag {:#x} ({} elems): no matching send",
                    dst, src, tag, elems
                ),
            );
        }
    }
    rep
}
