//! The `agcm-lint` binary: lint the workspace tree, print findings, exit
//! non-zero if any.  Usage: `cargo run -p agcm-lint [-- <workspace-root>]`.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    let violations = match agcm_lint::lint_tree(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("agcm-lint: {e}");
            return ExitCode::from(2);
        }
    };
    for v in &violations {
        println!("{v}");
    }
    if violations.is_empty() {
        println!("agcm-lint: clean (alloc / raw-index / unwrap rules)");
        ExitCode::SUCCESS
    } else {
        eprintln!("agcm-lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}
