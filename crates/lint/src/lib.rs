//! # agcm-lint — repo-specific static lint pass
//!
//! Three structural rules clippy cannot express, enforced over the
//! workspace source tree (no rustc plumbing — a hand-rolled lexer that
//! strips comments, string/char literals and `#[cfg(test)]` /
//! `#[cfg(any(test, feature = "scalar-ref"))]`-gated items, then scans the
//! residual code):
//!
//! * [`Rule::Alloc`] — **no allocation-capable calls in the zero-alloc
//!   stepping paths** (the hot kernel modules).  The runtime guard in
//!   `core/tests/zero_alloc.rs` catches steady-state allocations that
//!   actually happen; this lint catches them at review time, including on
//!   cold branches the test never takes.
//! * [`Rule::RawIndex`] — **no raw indexing outside the row API in kernel
//!   modules**: kernels go through `row`/`row_mut`/`get`/`set`, never
//!   `.raw()`/`.idx()`/pointer casts, so the access sanitizer and the
//!   declared `AccessSpec` footprints see every touch.
//! * [`Rule::Unwrap`] — **no `.unwrap()` in transport/resilience code**:
//!   fault-injection drives those paths through every error arm, and an
//!   unwrap turns an injected, recoverable fault into an abort.
//!   `.expect("…")` is permitted — the message documents the invariant.
//!
//! A finding can be waived in place with `// lint:allow(<rule>)` on the
//! same line or the line above, where `<rule>` is `alloc`, `raw-index` or
//! `unwrap`.  The waiver comment is expected to say *why* (reviewed like
//! any other code).
//!
//! Which rules bind which files is the repo policy in [`rules_for`]; the
//! `agcm-lint` binary walks `crates/*/src` and applies it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// One lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Allocation-capable call in a zero-alloc stepping path.
    Alloc,
    /// Raw indexing outside the row API in a kernel module.
    RawIndex,
    /// `.unwrap()` in transport/resilience code.
    Unwrap,
}

impl Rule {
    /// The `lint:allow(...)` key for this rule.
    pub fn key(self) -> &'static str {
        match self {
            Rule::Alloc => "alloc",
            Rule::RawIndex => "raw-index",
            Rule::Unwrap => "unwrap",
        }
    }

    /// Code patterns whose presence (in lexed code, not comments/strings)
    /// violates the rule.
    fn patterns(self) -> &'static [&'static str] {
        match self {
            Rule::Alloc => &[
                "Vec::new",
                "vec!",
                "Box::new",
                "format!",
                "String::from",
                ".to_vec()",
                ".to_string()",
                ".to_owned()",
                ".clone()",
                "with_capacity",
                ".collect()",
            ],
            Rule::RawIndex => &[".raw()", ".raw_mut()", ".idx(", "as_ptr", "as_mut_ptr"],
            Rule::Unwrap => &[".unwrap()"],
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

/// One finding.
#[derive(Debug, Clone)]
pub struct Violation {
    /// File the finding is in (as passed to the linter).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// The matched pattern.
    pub pattern: &'static str,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] `{}` (waive with `// lint:allow({})`)",
            self.file, self.line, self.rule, self.pattern, self.rule
        )
    }
}

// ---------------------------------------------------------------------------
// lexer: blank out comments and literals, collect lint:allow directives
// ---------------------------------------------------------------------------

struct Lexed {
    /// Source with comments and string/char literals replaced by spaces
    /// (newlines kept, so offsets and line numbers are unchanged).
    code: Vec<u8>,
    /// `(line, rule-key)` for every `lint:allow(...)` comment.
    allows: Vec<(usize, String)>,
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn lex(src: &str) -> Lexed {
    let s = src.as_bytes();
    let mut code = s.to_vec();
    let mut allows = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    let blank = |code: &mut [u8], from: usize, to: usize| {
        for c in code.iter_mut().take(to).skip(from) {
            if *c != b'\n' {
                *c = b' ';
            }
        }
    };
    while i < s.len() {
        match s[i] {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b'/' if i + 1 < s.len() && s[i + 1] == b'/' => {
                let start = i;
                while i < s.len() && s[i] != b'\n' {
                    i += 1;
                }
                let text = &src[start..i];
                if let Some(p) = text.find("lint:allow(") {
                    if let Some(q) = text[p..].find(')') {
                        let key = text[p + "lint:allow(".len()..p + q].trim();
                        allows.push((line, key.to_string()));
                    }
                }
                blank(&mut code, start, i);
            }
            b'/' if i + 1 < s.len() && s[i + 1] == b'*' => {
                let start = i;
                let mut depth = 1;
                i += 2;
                while i < s.len() && depth > 0 {
                    if s[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if s[i] == b'/' && i + 1 < s.len() && s[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if s[i] == b'*' && i + 1 < s.len() && s[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                blank(&mut code, start, i);
            }
            b'"' => {
                let start = i;
                i += 1;
                while i < s.len() {
                    match s[i] {
                        b'\\' => i += 2,
                        b'\n' => {
                            line += 1;
                            i += 1;
                        }
                        b'"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                blank(&mut code, start, i);
            }
            b'r' | b'b' if !(i > 0 && is_ident(s[i - 1])) => {
                // maybe a raw/byte string: r"", r#""#, br"", b"" …
                let start = i;
                let mut j = i + 1;
                if s[i] == b'b' && j < s.len() && s[j] == b'r' {
                    j += 1;
                }
                let mut hashes = 0usize;
                while j < s.len() && s[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                let raw = j > i + 1 || s[i] == b'r';
                if j < s.len() && s[j] == b'"' && (raw || s[i] == b'b') {
                    j += 1;
                    loop {
                        if j >= s.len() {
                            break;
                        }
                        if s[j] == b'\n' {
                            line += 1;
                            j += 1;
                        } else if !raw && s[j] == b'\\' {
                            j += 2;
                        } else if s[j] == b'"' {
                            let mut h = 0usize;
                            while j + 1 + h < s.len() && s[j + 1 + h] == b'#' && h < hashes {
                                h += 1;
                            }
                            if h == hashes {
                                j += 1 + hashes;
                                break;
                            }
                            j += 1;
                        } else {
                            j += 1;
                        }
                    }
                    blank(&mut code, start, j);
                    i = j;
                } else {
                    i += 1;
                }
            }
            b'\'' => {
                // char literal vs lifetime
                if i + 1 < s.len() && s[i + 1] == b'\\' {
                    let start = i;
                    i += 2;
                    while i < s.len() && s[i] != b'\'' {
                        i += 1;
                    }
                    i += 1;
                    blank(&mut code, start, i);
                } else if i + 2 < s.len() && s[i + 2] == b'\'' {
                    blank(&mut code, i, i + 3);
                    i += 3;
                } else {
                    i += 1; // lifetime: leave the identifier as code
                }
            }
            _ => i += 1,
        }
    }
    Lexed { code, allows }
}

// ---------------------------------------------------------------------------
// cfg(test)/cfg(any(test, feature = "scalar-ref")) item skipping
// ---------------------------------------------------------------------------

/// Blank every item gated by a `#[cfg(…)]` attribute whose predicate
/// mentions `test` or `scalar-ref` (test modules and the retained scalar
/// reference kernels are exempt from the stepping-path rules).
fn blank_test_gated(src: &str, code: &mut [u8]) {
    let s = src.as_bytes();
    let mut i = 0usize;
    while let Some(p) = find_in_code(code, i, b"#[cfg(") {
        // find the attribute's closing `]` (brackets nest in cfg(any(…)))
        let mut j = p + 2;
        let mut depth = 1; // the `[` of `#[`
        while j < s.len() && depth > 0 {
            match code[j] {
                b'[' => depth += 1,
                b']' => depth -= 1,
                _ => {}
            }
            j += 1;
        }
        let pred = &src[p..j];
        let gated = pred.contains("test") || pred.contains("scalar-ref");
        if !gated {
            i = j;
            continue;
        }
        // skip to the gated item's body: the first `{` or `;` at depth 0
        // (further attributes / visibility / signature in between)
        let mut k = j;
        let mut par = 0i32;
        while k < s.len() {
            match code[k] {
                b'(' | b'[' => par += 1,
                b')' | b']' => par -= 1,
                b'{' if par == 0 => break,
                b';' if par == 0 => break,
                _ => {}
            }
            k += 1;
        }
        let end = if k < s.len() && code[k] == b'{' {
            let mut depth = 0i32;
            let mut m = k;
            while m < s.len() {
                match code[m] {
                    b'{' => depth += 1,
                    b'}' => {
                        depth -= 1;
                        if depth == 0 {
                            m += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                m += 1;
            }
            m
        } else {
            (k + 1).min(s.len())
        };
        for c in code.iter_mut().take(end).skip(p) {
            if *c != b'\n' {
                *c = b' ';
            }
        }
        i = end;
    }
}

fn find_in_code(code: &[u8], from: usize, needle: &[u8]) -> Option<usize> {
    code[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|p| p + from)
}

// ---------------------------------------------------------------------------
// scanning
// ---------------------------------------------------------------------------

/// Lint one source file's text against `rules`.
pub fn lint_source(file: &str, src: &str, rules: &[Rule]) -> Vec<Violation> {
    let mut lexed = lex(src);
    blank_test_gated(src, &mut lexed.code);
    let mut out = Vec::new();
    for &rule in rules {
        for &pat in rule.patterns() {
            let mut from = 0usize;
            while let Some(p) = find_in_code(&lexed.code, from, pat.as_bytes()) {
                from = p + pat.len();
                // `vec!` must not match e.g. `to_vec!`-like idents
                if pat.as_bytes()[0].is_ascii_alphabetic() && p > 0 && is_ident(lexed.code[p - 1]) {
                    continue;
                }
                let line = 1 + lexed.code[..p].iter().filter(|&&b| b == b'\n').count();
                let waived = lexed
                    .allows
                    .iter()
                    .any(|(l, k)| (*l == line || *l + 1 == line) && k == rule.key());
                if !waived {
                    out.push(Violation {
                        file: file.to_string(),
                        line,
                        rule,
                        pattern: pat,
                    });
                }
            }
        }
    }
    out.sort_by_key(|v| v.line);
    out
}

// ---------------------------------------------------------------------------
// repo policy
// ---------------------------------------------------------------------------

/// The kernel modules bound by [`Rule::Alloc`] and [`Rule::RawIndex`] —
/// the zero-alloc stepping paths whose footprints the `core::access`
/// registry declares.
pub const KERNEL_MODULES: &[&str] = &[
    "crates/core/src/adaptation.rs",
    "crates/core/src/advection.rs",
    "crates/core/src/smoothing.rs",
    "crates/core/src/vertical.rs",
    "crates/core/src/filterop.rs",
    "crates/core/src/diag.rs",
];

/// Transport/resilience modules bound by [`Rule::Unwrap`]: every error arm
/// here is reachable under fault injection.
pub const NO_UNWRAP_MODULES: &[&str] = &[
    "crates/comm/src/transport.rs",
    "crates/comm/src/runtime.rs",
    "crates/comm/src/collective.rs",
    "crates/comm/src/fault.rs",
    "crates/core/src/resilience.rs",
];

/// Which rules bind a workspace-relative path (forward slashes).
pub fn rules_for(rel: &str) -> Vec<Rule> {
    let mut rules = Vec::new();
    if KERNEL_MODULES.iter().any(|m| rel.ends_with(m)) {
        rules.push(Rule::Alloc);
        rules.push(Rule::RawIndex);
    }
    if NO_UNWRAP_MODULES.iter().any(|m| rel.ends_with(m)) {
        rules.push(Rule::Unwrap);
    }
    rules
}

/// Walk `root` (a workspace checkout) and lint every bound file.
pub fn lint_tree(root: &Path) -> io::Result<Vec<Violation>> {
    let mut out = Vec::new();
    for rel in KERNEL_MODULES.iter().chain(NO_UNWRAP_MODULES) {
        let path = root.join(rel);
        if !path.exists() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("policy file missing: {}", path.display()),
            ));
        }
    }
    let mut stack = vec![root.join("crates")];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let path = entry?.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .to_string_lossy()
                    .replace('\\', "/");
                let rules = rules_for(&rel);
                if !rules.is_empty() {
                    let src = fs::read_to_string(&path)?;
                    out.extend(lint_source(&rel, &src, &rules));
                }
            }
        }
    }
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(out)
}
