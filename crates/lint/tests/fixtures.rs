//! Fixture coverage for the lint pass: each rule fires on a minimal
//! triggering source, stays silent on clean code, honours the
//! `lint:allow` waiver and the test/scalar-ref exemptions, and never
//! matches inside comments or string literals.

use agcm_lint::{lint_source, lint_tree, rules_for, Rule};

const ALL: &[Rule] = &[Rule::Alloc, Rule::RawIndex, Rule::Unwrap];

#[test]
fn alloc_rule_fires_on_each_allocation_pattern() {
    let fixtures = [
        ("let v = Vec::new();", "Vec::new"),
        ("let v = vec![0.0; n];", "vec!"),
        ("let b = Box::new(x);", "Box::new"),
        ("let s = format!(\"{x}\");", "format!"),
        ("let s = String::from(\"x\");", "String::from"),
        ("let v = xs.to_vec();", ".to_vec()"),
        ("let s = x.to_string();", ".to_string()"),
        ("let v = x.clone();", ".clone()"),
        ("let v = Vec::with_capacity(3);", "with_capacity"),
        ("let v = it.collect();", ".collect()"),
    ];
    for (src, pat) in fixtures {
        let v = lint_source("k.rs", src, &[Rule::Alloc]);
        assert_eq!(v.len(), 1, "{src}");
        assert_eq!(v[0].pattern, pat, "{src}");
        assert_eq!(v[0].rule, Rule::Alloc);
        assert_eq!(v[0].line, 1);
    }
}

#[test]
fn raw_index_rule_fires_on_raw_accessors() {
    for (src, pat) in [
        ("let s = f.raw();", ".raw()"),
        ("let s = f.raw_mut();", ".raw_mut()"),
        ("let p = f.idx(i, j, k);", ".idx("),
        ("let p = data.as_ptr();", "as_ptr"),
        ("let p = data.as_mut_ptr();", "as_mut_ptr"),
    ] {
        let v = lint_source("k.rs", src, &[Rule::RawIndex]);
        assert_eq!(v.len(), 1, "{src}");
        assert_eq!(v[0].pattern, pat, "{src}");
    }
}

#[test]
fn unwrap_rule_fires_and_expect_is_permitted() {
    let v = lint_source("t.rs", "let x = rx.recv().unwrap();", &[Rule::Unwrap]);
    assert_eq!(v.len(), 1);
    assert_eq!(v[0].pattern, ".unwrap()");
    // .expect("…") documents the invariant — allowed
    let v = lint_source(
        "t.rs",
        "let x = rx.recv().expect(\"sender alive\");",
        &[Rule::Unwrap],
    );
    assert!(v.is_empty());
}

#[test]
fn clean_kernel_code_passes_all_rules() {
    let src = r#"
pub fn kernel(f: &Field3, out: &mut Field3, region: Region) {
    for k in region.z0..region.z1 {
        for j in region.y0..region.y1 {
            let r = f.row(-3, nx + 3, j, k);
            let o = out.row_mut(0, nx, j, k);
            for (p, x) in o.iter_mut().enumerate() {
                *x = r[p] + r[p + 1];
            }
        }
    }
}
"#;
    assert!(lint_source("k.rs", src, ALL).is_empty());
}

#[test]
fn waiver_on_same_or_preceding_line_suppresses_the_finding() {
    let same = "let v: Vec<f64> = Vec::new(); // lint:allow(alloc) build-time only";
    assert!(lint_source("k.rs", same, &[Rule::Alloc]).is_empty());
    let above = "// init-time table build: lint:allow(alloc)\nlet v = Vec::new();";
    assert!(lint_source("k.rs", above, &[Rule::Alloc]).is_empty());
    // a waiver for a DIFFERENT rule does not suppress
    let wrong = "let v = Vec::new(); // lint:allow(unwrap)";
    assert_eq!(lint_source("k.rs", wrong, &[Rule::Alloc]).len(), 1);
    // a waiver two lines up does not suppress
    let far = "// lint:allow(alloc)\n\nlet v = Vec::new();";
    assert_eq!(lint_source("k.rs", far, &[Rule::Alloc]).len(), 1);
}

#[test]
fn test_modules_and_scalar_ref_items_are_exempt() {
    let src = r#"
pub fn hot(f: &Field3) -> f64 {
    f.get(0, 0, 0)
}

#[cfg(any(test, feature = "scalar-ref"))]
pub fn scalar_reference(n: usize) -> Vec<f64> {
    let mut v = vec![0.0; n];
    v[0] = 1.0;
    v
}

#[cfg(test)]
mod tests {
    #[test]
    fn alloc_happens_here() {
        let v = Vec::new();
        let s = format!("{v:?}");
        assert!(s.raw().unwrap().is_empty());
    }
}
"#;
    assert!(lint_source("k.rs", src, ALL).is_empty());
}

#[test]
fn non_test_cfg_gates_are_not_exempt() {
    let src = "#[cfg(feature = \"access-sanitizer\")]\nfn shadow() { let v = Vec::new(); }";
    assert_eq!(lint_source("k.rs", src, &[Rule::Alloc]).len(), 1);
}

#[test]
fn comments_and_strings_never_trigger() {
    let src = r#"
// Vec::new() would allocate here, so the kernel uses .raw() — not!
/* block comment: x.unwrap() */
let msg = "call .unwrap() or Vec::new or f.raw() for fun";
let raw = r#inner#;
let c = '"';
"#
    .replace("r#inner#", "r#\".unwrap() inside raw string\"#");
    assert!(lint_source("k.rs", &src, ALL).is_empty());
}

#[test]
fn policy_binds_kernels_and_transport_only() {
    assert_eq!(
        rules_for("crates/core/src/adaptation.rs"),
        vec![Rule::Alloc, Rule::RawIndex]
    );
    assert_eq!(
        rules_for("crates/comm/src/transport.rs"),
        vec![Rule::Unwrap]
    );
    assert!(rules_for("crates/core/src/serial.rs").is_empty());
    assert!(rules_for("crates/mesh/src/field.rs").is_empty());
}

/// The enforcement test: the real workspace tree is clean.  Any allocation
/// / raw-index / unwrap introduced into a bound module fails this test
/// (and the `agcm-lint` CI step) until waived or fixed.
#[test]
fn workspace_tree_is_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root");
    let violations = lint_tree(root).expect("lint walk");
    assert!(
        violations.is_empty(),
        "lint violations:\n{}",
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
